(* The LINQ substrate: every operator checked against list semantics,
   plus laziness and re-enumeration behaviour. *)

module E = Enumerable

let il = Alcotest.(list int)

let of_l = E.of_list

let test_sources () =
  Alcotest.(check il) "of_array" [ 1; 2; 3 ] (E.to_list (E.of_array [| 1; 2; 3 |]));
  Alcotest.(check il) "of_list" [ 1; 2 ] (E.to_list (of_l [ 1; 2 ]));
  Alcotest.(check il) "of_seq" [ 5; 6 ] (E.to_list (E.of_seq (List.to_seq [ 5; 6 ])));
  Alcotest.(check il) "empty" [] (E.to_list E.empty);
  Alcotest.(check il) "range" [ 3; 4; 5 ] (E.to_list (E.range 3 3));
  Alcotest.(check il) "range empty" [] (E.to_list (E.range 0 0));
  Alcotest.(check il) "repeat" [ 7; 7 ] (E.to_list (E.repeat 7 2));
  Alcotest.(check il) "init" [ 0; 2; 4 ] (E.to_list (E.init 3 (fun i -> 2 * i)));
  Alcotest.check_raises "range negative"
    (Invalid_argument "Enumerable.range: negative count") (fun () ->
      ignore (E.range 0 (-1)))

let test_elementwise () =
  let xs = of_l [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check il) "select" [ 2; 4; 6; 8; 10 ]
    (E.to_list (E.select (fun x -> 2 * x) xs));
  Alcotest.(check il) "select_i" [ 1; 3; 5; 7; 9 ]
    (E.to_list (E.select_i (fun i x -> i + x) xs));
  Alcotest.(check il) "where" [ 2; 4 ]
    (E.to_list (E.where (fun x -> x mod 2 = 0) xs));
  Alcotest.(check il) "where_i drops evens idx" [ 1; 3; 5 ]
    (E.to_list (E.where_i (fun i _ -> i mod 2 = 0) xs));
  Alcotest.(check il) "take" [ 1; 2 ] (E.to_list (E.take 2 xs));
  Alcotest.(check il) "take more than len" [ 1; 2; 3; 4; 5 ]
    (E.to_list (E.take 10 xs));
  Alcotest.(check il) "take zero" [] (E.to_list (E.take 0 xs));
  Alcotest.(check il) "skip" [ 4; 5 ] (E.to_list (E.skip 3 xs));
  Alcotest.(check il) "skip all" [] (E.to_list (E.skip 9 xs));
  Alcotest.(check il) "take_while" [ 1; 2 ]
    (E.to_list (E.take_while (fun x -> x < 3) xs));
  Alcotest.(check il) "skip_while" [ 3; 4; 5 ]
    (E.to_list (E.skip_while (fun x -> x < 3) xs));
  (* take_while must not resume after the first failure *)
  Alcotest.(check il) "take_while stops for good" [ 1 ]
    (E.to_list (E.take_while (fun x -> x mod 2 = 1) xs))

let test_nested () =
  let xs = of_l [ 1; 2; 3 ] in
  Alcotest.(check il) "select_many"
    [ 1; 1; 2; 1; 2; 3 ]
    (E.to_list (E.select_many (fun x -> E.range 1 x) xs));
  Alcotest.(check il) "select_many_result"
    [ 11; 21; 22; 31; 32; 33 ]
    (E.to_list
       (E.select_many_result (fun x -> E.range 1 x) (fun x y -> (10 * x) + y) xs));
  Alcotest.(check il) "select_many with empties" [ 2; 2 ]
    (E.to_list
       (E.select_many
          (fun x -> if x = 2 then E.repeat 2 2 else E.empty)
          xs))

let test_join () =
  let orders = of_l [ 1, "apple"; 2, "pear"; 1, "fig" ] in
  let people = of_l [ 1, "ann"; 2, "bob"; 3, "cy" ] in
  let joined =
    E.join fst fst (fun (_, name) (_, item) -> name ^ ":" ^ item) people orders
  in
  Alcotest.(check (list string)) "equi-join"
    [ "ann:apple"; "ann:fig"; "bob:pear" ]
    (E.to_list joined)

let test_composition () =
  Alcotest.(check il) "append" [ 1; 2; 3; 4 ]
    (E.to_list (E.append (of_l [ 1; 2 ]) (of_l [ 3; 4 ])));
  Alcotest.(check il) "concat" [ 1; 2; 3 ]
    (E.to_list (E.concat (of_l [ of_l [ 1 ]; E.empty; of_l [ 2; 3 ] ])));
  Alcotest.(check il) "zip" [ 11; 22 ]
    (E.to_list (E.zip (fun a b -> a + b) (of_l [ 1; 2; 3 ]) (of_l [ 10; 20 ])));
  Alcotest.(check il) "default_if_empty nonempty" [ 9 ]
    (E.to_list (E.default_if_empty 0 (of_l [ 9 ])));
  Alcotest.(check il) "default_if_empty empty" [ 0 ]
    (E.to_list (E.default_if_empty 0 E.empty))

let test_sinks () =
  let xs = of_l [ 3; 1; 2; 3; 1 ] in
  Alcotest.(check il) "reverse" [ 1; 3; 2; 1; 3 ] (E.to_list (E.reverse xs));
  Alcotest.(check il) "distinct" [ 3; 1; 2 ] (E.to_list (E.distinct xs));
  Alcotest.(check il) "order_by" [ 1; 1; 2; 3; 3 ]
    (E.to_list (E.order_by (fun x -> x) xs));
  Alcotest.(check il) "order_by_descending" [ 3; 3; 2; 1; 1 ]
    (E.to_list (E.order_by_descending (fun x -> x) xs));
  (* stability: order by constant key preserves source order *)
  Alcotest.(check il) "order_by stable" [ 3; 1; 2; 3; 1 ]
    (E.to_list (E.order_by (fun _ -> 0) xs))

let test_group_by () =
  let xs = of_l [ 1; 2; 3; 4; 5 ] in
  let gs = E.to_list (E.group_by (fun x -> x mod 2) xs) in
  Alcotest.(check (list (pair int (array int))))
    "group_by"
    [ 1, [| 1; 3; 5 |]; 0, [| 2; 4 |] ]
    gs;
  let ge = E.to_list (E.group_by_elem (fun x -> x mod 2) (fun x -> 10 * x) xs) in
  Alcotest.(check (list (pair int (array int))))
    "group_by_elem"
    [ 1, [| 10; 30; 50 |]; 0, [| 20; 40 |] ]
    ge;
  let gr =
    E.to_list
      (E.group_by_result (fun x -> x mod 2) (fun k vs -> (k, Array.length vs)) xs)
  in
  Alcotest.(check (list (pair int int))) "group_by_result"
    [ 1, 3; 0, 2 ] gr

let test_aggregates () =
  let xs = of_l [ 4; 1; 3; 2 ] in
  Alcotest.(check int) "aggregate" 10 (E.aggregate 0 ( + ) xs);
  Alcotest.(check int) "aggregate_result" 20
    (E.aggregate_result 0 ( + ) (fun s -> 2 * s) xs);
  Alcotest.(check int) "reduce" 10 (E.reduce ( + ) xs);
  Alcotest.(check int) "sum_int" 10 (E.sum_int xs);
  Alcotest.(check (float 1e-9)) "sum_float" 2.5
    (E.sum_float (of_l [ 1.0; 1.5 ]));
  Alcotest.(check int) "sum_by_int" 20 (E.sum_by_int (fun x -> 2 * x) xs);
  Alcotest.(check (float 1e-9)) "average" 2.5
    (E.average (of_l [ 1.0; 2.0; 3.0; 4.0 ]));
  Alcotest.(check int) "count" 4 (E.count xs);
  Alcotest.(check int) "count_where" 2 (E.count_where (fun x -> x > 2) xs);
  Alcotest.(check int) "min" 1 (E.min_elt xs);
  Alcotest.(check int) "max" 4 (E.max_elt xs);
  Alcotest.(check int) "min_by" 4 (E.min_by (fun x -> -x) xs);
  Alcotest.(check int) "max_by" 1 (E.max_by (fun x -> -x) xs);
  Alcotest.(check bool) "any" true (E.any xs);
  Alcotest.(check bool) "any empty" false (E.any E.empty);
  Alcotest.(check bool) "exists" true (E.exists (fun x -> x = 3) xs);
  Alcotest.(check bool) "exists false" false (E.exists (fun x -> x = 9) xs);
  Alcotest.(check bool) "for_all" true (E.for_all (fun x -> x > 0) xs);
  Alcotest.(check bool) "for_all false" false (E.for_all (fun x -> x > 1) xs);
  Alcotest.(check bool) "contains" true (E.contains 3 xs);
  Alcotest.(check int) "first" 4 (E.first xs);
  Alcotest.(check int) "first_where" 3 (E.first_where (fun x -> x mod 3 = 0) xs);
  Alcotest.(check (option int)) "first_opt empty" None (E.first_opt E.empty);
  Alcotest.(check int) "last" 2 (E.last xs);
  Alcotest.(check int) "element_at" 3 (E.element_at 2 xs);
  Alcotest.(check bool) "sequence_equal yes" true
    (E.sequence_equal xs (of_l [ 4; 1; 3; 2 ]));
  Alcotest.(check bool) "sequence_equal prefix" false
    (E.sequence_equal xs (of_l [ 4; 1; 3 ]))

let test_empty_aggregates_raise () =
  let raises f = Alcotest.check_raises "empty" Iterator.No_such_element f in
  raises (fun () -> ignore (E.min_elt (E.empty : int E.t)));
  raises (fun () -> ignore (E.max_elt (E.empty : int E.t)));
  raises (fun () -> ignore (E.reduce ( + ) E.empty));
  raises (fun () -> ignore (E.first (E.empty : int E.t)));
  raises (fun () -> ignore (E.last (E.empty : int E.t)));
  raises (fun () -> ignore (E.average E.empty))

let test_laziness () =
  (* Composable operators must not touch the source until enumeration. *)
  let touched = ref 0 in
  let src =
    E.of_fun (fun () ->
        incr touched;
        Iterator.of_list [ 1; 2; 3 ])
  in
  let q = E.select (fun x -> x + 1) (E.where (fun x -> x > 1) src) in
  Alcotest.(check int) "not yet enumerated" 0 !touched;
  Alcotest.(check il) "first run" [ 3; 4 ] (E.to_list q);
  Alcotest.(check il) "second run" [ 3; 4 ] (E.to_list q);
  Alcotest.(check int) "two enumerations" 2 !touched

let test_per_element_laziness () =
  (* take must pull no more elements than it needs. *)
  let pulled = ref 0 in
  let src =
    E.select
      (fun x ->
        incr pulled;
        x)
      (E.range 0 1000)
  in
  ignore (E.to_list (E.take 3 src));
  Alcotest.(check int) "pulled exactly 3" 3 !pulled

(* Properties: operators agree with list semantics. *)
let prop_ops_match_lists =
  QCheck.Test.make ~name:"select/where/take/skip match list semantics"
    ~count:300
    QCheck.(triple (list small_int) small_int small_int)
    (fun (l, a, b) ->
      let n = abs a mod 8 and m = abs b mod 8 in
      let lhs =
        E.to_list
          (E.take n (E.skip m (E.where (fun x -> x mod 2 = 0)
                                 (E.select (fun x -> x + 1) (of_l l)))))
      in
      let rhs =
        l |> List.map (fun x -> x + 1)
        |> List.filter (fun x -> x mod 2 = 0)
        |> List.filteri (fun i _ -> i >= m)
        |> List.filteri (fun i _ -> i < n)
      in
      lhs = rhs)

let prop_distinct_order =
  QCheck.Test.make ~name:"distinct keeps first occurrences in order"
    ~count:300
    QCheck.(list (int_bound 10))
    (fun l ->
      let expect =
        List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] l
      in
      E.to_list (E.distinct (of_l l)) = expect)

let prop_order_by_sorted_and_stable =
  QCheck.Test.make ~name:"order_by sorts stably by key" ~count:300
    QCheck.(list (pair (int_bound 5) small_int))
    (fun l ->
      let got = E.to_list (E.order_by fst (of_l l)) in
      got = List.stable_sort (fun a b -> compare (fst a) (fst b)) l)

let prop_select_many_is_concat_map =
  QCheck.Test.make ~name:"select_many = concat_map" ~count:200
    QCheck.(list (int_bound 5))
    (fun l ->
      E.to_list (E.select_many (fun x -> E.range 0 x) (of_l l))
      = List.concat_map (fun x -> List.init x (fun i -> i)) l)

let () =
  Alcotest.run "enumerable"
    [
      ( "operators",
        [
          Alcotest.test_case "sources" `Quick test_sources;
          Alcotest.test_case "elementwise" `Quick test_elementwise;
          Alcotest.test_case "nested" `Quick test_nested;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "composition" `Quick test_composition;
          Alcotest.test_case "sinks" `Quick test_sinks;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "aggregates" `Quick test_aggregates;
          Alcotest.test_case "empty raises" `Quick test_empty_aggregates_raise;
        ] );
      ( "laziness",
        [
          Alcotest.test_case "deferred" `Quick test_laziness;
          Alcotest.test_case "per-element" `Quick test_per_element_laziness;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_ops_match_lists;
          QCheck_alcotest.to_alcotest prop_distinct_order;
          QCheck_alcotest.to_alcotest prop_order_by_sorted_and_stable;
          QCheck_alcotest.to_alcotest prop_select_many_is_concat_map;
        ] );
    ]
