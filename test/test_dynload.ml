(* The runtime compilation substrate: plugin lifecycle, error handling,
   timing accounting, and concurrent use from domains. *)

let with_native f =
  if Dynload.is_available () then f ()
  else print_endline "(skipped: no native compiler)"

let minimal_plugin body =
  Printf.sprintf
    "exception Steno_result of Stdlib.Obj.t\n\
     let __query (__env : Stdlib.Obj.t array) : Stdlib.Obj.t = ignore __env; %s\n\
     let () = Stdlib.raise (Steno_result (Stdlib.Obj.repr __query))\n"
    body

let test_roundtrip () =
  with_native @@ fun () ->
  let c = Dynload.compile ~source:(minimal_plugin "Stdlib.Obj.repr 42") in
  let v : int = Obj.obj (c.Dynload.run [||]) in
  Alcotest.(check int) "value" 42 v;
  (* Re-running the same compiled plugin works. *)
  Alcotest.(check int) "rerun" 42 (Obj.obj (c.Dynload.run [||]))

let test_env_passing () =
  with_native @@ fun () ->
  let c =
    Dynload.compile
      ~source:
        (minimal_plugin
           "Stdlib.Obj.repr ((Stdlib.Obj.obj (Stdlib.Array.get __env 0) : \
            int) * 2)")
  in
  Alcotest.(check int) "env slot read" 14 (Obj.obj (c.Dynload.run [| Obj.repr 7 |]));
  Alcotest.(check int) "new env, same plugin" 20
    (Obj.obj (c.Dynload.run [| Obj.repr 10 |]))

let test_syntax_error () =
  with_native @@ fun () ->
  Alcotest.(check bool) "syntax error reported" true
    (match Dynload.compile ~source:"let x = (" with
    | exception Dynload.Compilation_failed msg ->
      String.length msg > 0
    | _ -> false)

let test_type_error () =
  with_native @@ fun () ->
  Alcotest.(check bool) "type error reported" true
    (match Dynload.compile ~source:(minimal_plugin "1 + true") with
    | exception Dynload.Compilation_failed _ -> true
    | _ -> false)

let test_plugin_without_handshake () =
  with_native @@ fun () ->
  (* A module that loads fine but never raises the handshake exception. *)
  Alcotest.(check bool) "missing handshake rejected" true
    (match Dynload.compile ~source:"let _x = 1" with
    | exception Dynload.Compilation_failed _ -> true
    | _ -> false)

let test_plugin_initializer_failure () =
  with_native @@ fun () ->
  (* An initializer raising an unrelated exception must not be mistaken
     for the handshake. *)
  Alcotest.(check bool) "foreign exception propagates" true
    (match Dynload.compile ~source:"let () = failwith \"boom\"" with
    | exception Failure msg -> String.equal msg "boom"
    | exception _ -> false
    | _ -> false)

let test_timings () =
  with_native @@ fun () ->
  let c = Dynload.compile ~source:(minimal_plugin "Stdlib.Obj.repr 0") in
  let t = c.Dynload.timings in
  Alcotest.(check bool) "compile time is real" true (t.Dynload.compile_ms > 1.0);
  Alcotest.(check bool) "write time nonneg" true (t.Dynload.write_ms >= 0.0);
  Alcotest.(check bool) "load time nonneg" true (t.Dynload.load_ms >= 0.0)

let test_many_plugins () =
  with_native @@ fun () ->
  (* Distinct module names allow unbounded plugin loads in one process. *)
  List.iter
    (fun i ->
      let c =
        Dynload.compile
          ~source:(minimal_plugin (Printf.sprintf "Stdlib.Obj.repr %d" i))
      in
      Alcotest.(check int) "each plugin distinct" i (Obj.obj (c.Dynload.run [||])))
    [ 100; 200; 300 ]

let test_concurrent_compiles () =
  with_native @@ fun () ->
  (* Compilation and loading from multiple domains must serialize safely. *)
  let results =
    Domain_pool.run ~workers:4 ~tasks:6 (fun i ->
        let c =
          Dynload.compile
            ~source:(minimal_plugin (Printf.sprintf "Stdlib.Obj.repr (%d * 3)" i))
        in
        (Obj.obj (c.Dynload.run [||]) : int))
  in
  Alcotest.(check (array int)) "all domains compiled"
    (Array.init 6 (fun i -> i * 3))
    results

let test_workdir () =
  with_native @@ fun () ->
  let dir = Dynload.workdir () in
  Alcotest.(check bool) "workdir exists" true (Sys.is_directory dir)

let () =
  Alcotest.run "dynload"
    [
      ( "lifecycle",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip;
          Alcotest.test_case "env passing" `Quick test_env_passing;
          Alcotest.test_case "many plugins" `Quick test_many_plugins;
          Alcotest.test_case "workdir" `Quick test_workdir;
        ] );
      ( "errors",
        [
          Alcotest.test_case "syntax error" `Quick test_syntax_error;
          Alcotest.test_case "type error" `Quick test_type_error;
          Alcotest.test_case "no handshake" `Quick test_plugin_without_handshake;
          Alcotest.test_case "foreign init failure" `Quick
            test_plugin_initializer_failure;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "timings" `Quick test_timings;
          Alcotest.test_case "concurrent" `Slow test_concurrent_compiles;
        ] );
    ]
