(* Expression trees: evaluation, staging, typing, simplification,
   printing, and capture extraction. *)

open Expr.Infix

let test_eval_arith () =
  Alcotest.(check int) "int arith" 17
    (Expr.eval Expr.(int 3 * int 5 + int 2));
  Alcotest.(check (float 1e-9)) "float arith" 2.5
    (Expr.eval Expr.(float 1.0 +. (float 3.0 /. float 2.0)));
  Alcotest.(check bool) "cmp" true (Expr.eval Expr.(int 3 < int 5));
  Alcotest.(check bool) "bool ops" true
    (Expr.eval Expr.(bool true && (bool false || bool true)));
  Alcotest.(check int) "if" 1 (Expr.eval (Expr.If (Expr.bool true, Expr.int 1, Expr.int 2)));
  Alcotest.(check int) "mod" 2 (Expr.eval Expr.(int 17 mod int 5))

let test_eval_structures () =
  Alcotest.(check (pair int bool)) "pair" (1, true)
    (Expr.eval (Expr.Pair (Expr.int 1, Expr.bool true)));
  Alcotest.(check int) "fst" 1
    (Expr.eval (Expr.Fst (Expr.Pair (Expr.int 1, Expr.bool true))));
  Alcotest.(check bool) "snd" true
    (Expr.eval (Expr.Snd (Expr.Pair (Expr.int 1, Expr.bool true))));
  Alcotest.(check int) "proj3_2" 2
    (Expr.eval (Expr.Proj3_2 (Expr.Triple (Expr.int 1, Expr.int 2, Expr.int 3))));
  let arr = Expr.capture (Ty.Array Ty.Int) [| 10; 20; 30 |] in
  Alcotest.(check int) "array_get" 20 (Expr.eval arr.%(Expr.int 1));
  Alcotest.(check int) "array_length" 3 (Expr.eval (Expr.Array_length arr))

let test_eval_let_apply () =
  Alcotest.(check int) "let" 6
    (Expr.eval (Expr.let_ "x" (Expr.int 3) (fun x -> x + x)));
  let f = Expr.capture (Ty.Func (Ty.Int, Ty.Int)) (fun x -> Stdlib.( * ) x 7) in
  Alcotest.(check int) "apply captured fn" 21
    (Expr.eval (Expr.Apply (f, Expr.int 3)))

let test_stage () =
  let lam = Expr.lam "x" Ty.Int (fun x -> (x * x) + Expr.int 1) in
  let f = Expr.stage lam in
  Alcotest.(check int) "staged" 26 (f 5);
  Alcotest.(check int) "staged again" 10 (f 3);
  let lam2 = Expr.lam2 "a" Ty.Int "b" Ty.Int (fun a b -> a - b) in
  Alcotest.(check int) "staged2" 4 (Expr.stage2 lam2 7 3)

let test_stage_shortcircuit () =
  (* && must not evaluate its right operand when the left is false:
     the staged closure must match generated-code semantics. *)
  let lam =
    Expr.lam "x" Ty.Int (fun x ->
        x > Expr.int 0 && Expr.int 10 / x > Expr.int 3)
  in
  let f = Expr.stage lam in
  Alcotest.(check bool) "guarded div" false (f 0);
  Alcotest.(check bool) "true case" true (f 2)

let test_ty_of () =
  let t1 = Expr.ty_of Expr.(int 1 + int 2) in
  Alcotest.(check string) "int" "int" (Ty.to_string t1);
  let t2 = Expr.ty_of (Expr.Pair (Expr.float 1.0, Expr.bool true)) in
  Alcotest.(check string) "pair" "(float * bool)" (Ty.to_string t2);
  let arr = Expr.capture (Ty.Array Ty.Float) [| 1.0 |] in
  Alcotest.(check string) "array elem" "float"
    (Ty.to_string (Expr.ty_of arr.%(Expr.int 0)))

let test_free_vars () =
  let v1 = Expr.fresh_var "a" Ty.Int in
  let v2 = Expr.fresh_var "b" Ty.Int in
  let e = Expr.Var v1 + Expr.Let (v2, Expr.int 1, Expr.Var v2 + Expr.Var v1) in
  Alcotest.(check (list int)) "free" [ v1.Expr.id ] (Expr.free_var_ids e);
  Alcotest.(check (list int)) "closed" [] (Expr.free_var_ids Expr.(int 1 + int 2))

let test_simplify_folds_constants () =
  let e = Expr.(int 2 * int 3 + int 4) in
  (match Expr.simplify e with
  | Expr.Const_int 10 -> ()
  | _ -> Alcotest.fail "expected folded constant 10");
  let v = Expr.fresh_var "x" Ty.Int in
  (* Partial folding around a variable. *)
  match Expr.simplify (Expr.Var v + (Expr.int 2 * Expr.int 3)) with
  | Expr.Prim2 (Prim.Add_int, Expr.Var _, Expr.Const_int 6) -> ()
  | _ -> Alcotest.fail "expected x + 6"

let test_simplify_if_and_let () =
  (match Expr.simplify (Expr.If (Expr.bool true, Expr.int 1, Expr.int 2)) with
  | Expr.Const_int 1 -> ()
  | _ -> Alcotest.fail "if-true not folded");
  (match Expr.simplify (Expr.let_ "x" (Expr.int 5) (fun x -> x + x)) with
  | Expr.Const_int 10 -> ()
  | _ -> Alcotest.fail "let of atom not inlined/folded");
  (* Captures must not fold. *)
  match Expr.simplify (Expr.capture Ty.Int 3 + Expr.int 1) with
  | Expr.Prim2 (Prim.Add_int, Expr.Capture (_, _), Expr.Const_int 1) -> ()
  | _ -> Alcotest.fail "capture folded away"

let prop_simplify_preserves_semantics =
  (* Random closed int expressions: simplify must not change the value. *)
  let gen =
    QCheck.Gen.(
      sized @@ fix (fun self n ->
          if Stdlib.( <= ) n 0 then map Expr.int (int_range (-20) 20)
          else
            frequency
              [
                1, map Expr.int (int_range (-20) 20);
                2, map2 (fun a b -> Expr.Infix.(a + b)) (self (Stdlib.( / ) n 2)) (self (Stdlib.( / ) n 2));
                2, map2 (fun a b -> Expr.Infix.(a - b)) (self (Stdlib.( / ) n 2)) (self (Stdlib.( / ) n 2));
                2, map2 (fun a b -> Expr.Infix.(a * b)) (self (Stdlib.( / ) n 2)) (self (Stdlib.( / ) n 2));
                1,
                  map3
                    (fun c a b -> Expr.If (Expr.Infix.(c > Expr.int 0), a, b))
                    (self (Stdlib.( / ) n 3)) (self (Stdlib.( / ) n 3)) (self (Stdlib.( / ) n 3));
                1, map2 (fun a f -> Expr.let_ "t" a f)
                     (self (Stdlib.( / ) n 2))
                     (return (fun x -> Expr.Infix.(x + x)));
              ]))
  in
  let arb = QCheck.make ~print:(fun e -> Format.asprintf "%a" Expr.pp_debug e) gen in
  QCheck.Test.make ~name:"simplify preserves value" ~count:300 arb (fun e ->
      Stdlib.( = ) (Expr.eval e) (Expr.eval (Expr.simplify e)))

let prop_simplify_shrinks =
  let gen = QCheck.Gen.(map2 (fun a b -> Expr.Infix.(Expr.int a + Expr.int b)) small_int small_int) in
  QCheck.Test.make ~name:"simplify does not grow" ~count:100 (QCheck.make gen)
    (fun e -> Stdlib.( <= ) (Expr.size (Expr.simplify e)) (Expr.size e))

let test_print () =
  let v = Expr.fresh_var "x" Ty.Int in
  let env = Expr.name_env_add v "x0" Expr.name_env_empty in
  Alcotest.(check string) "var+arith" "((x0 * x0) + 1)"
    (Expr.print env Expr.(Expr.Var v * Expr.Var v + int 1));
  Alcotest.(check string) "negative literal" "(-3)"
    (Expr.print Expr.name_env_empty (Expr.int (-3)));
  Alcotest.(check string) "bool" "((x0 mod 2) = 0)"
    (Expr.print env Expr.(Expr.Var v mod int 2 = int 0))

let test_print_captures () =
  let tbl = Expr.Capture_table.create () in
  let arr = [| 1.5 |] in
  let e =
    Expr.Infix.(
      (Expr.capture (Ty.Array Ty.Float) arr).%(Expr.int 0)
      +. Expr.capture Ty.Float 2.0)
  in
  let s = Expr.print ~captures:tbl Expr.name_env_empty e in
  Alcotest.(check string) "slots"
    "((Stdlib.Array.unsafe_get __c0 0) +. __c1)" s;
  Alcotest.(check int) "two slots" 2 (Expr.Capture_table.length tbl);
  (* Same capture reuses its slot. *)
  let s2 = Expr.print ~captures:tbl Expr.name_env_empty
      (Expr.capture (Ty.Array Ty.Float) arr)
  in
  Alcotest.(check string) "dedup" "__c0" s2;
  Alcotest.(check int) "still two" 2 (Expr.Capture_table.length tbl);
  let env = Expr.Capture_table.to_env tbl in
  Alcotest.(check int) "env size" 2 (Array.length env);
  Alcotest.(check (float 0.0)) "env slot 0" 1.5 ((Obj.obj env.(0) : float array).(0))

let test_print_without_table_raises () =
  Alcotest.check_raises "no table"
    (Invalid_argument "Expr.print: capture without a capture table")
    (fun () ->
      ignore (Expr.print Expr.name_env_empty (Expr.capture Ty.Int 1)))

let test_float_literals_roundtrip () =
  (* Hex float literals must parse back to the same value. *)
  List.iter
    (fun x ->
      let s = Expr.print Expr.name_env_empty (Expr.float x) in
      let stripped = String.sub s 1 (Stdlib.( - ) (String.length s) 2) in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "roundtrip %s" s)
        x
        (float_of_string stripped))
    [ 0.0; 1.0; -1.5; 3.141592653589793; 1e-300; 7.25e300 ]

let () =
  Alcotest.run "expr"
    [
      ( "eval",
        [
          Alcotest.test_case "arith" `Quick test_eval_arith;
          Alcotest.test_case "structures" `Quick test_eval_structures;
          Alcotest.test_case "let/apply" `Quick test_eval_let_apply;
          Alcotest.test_case "stage" `Quick test_stage;
          Alcotest.test_case "short-circuit" `Quick test_stage_shortcircuit;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "ty_of" `Quick test_ty_of;
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "simplify constants" `Quick test_simplify_folds_constants;
          Alcotest.test_case "simplify if/let" `Quick test_simplify_if_and_let;
          QCheck_alcotest.to_alcotest prop_simplify_preserves_semantics;
          QCheck_alcotest.to_alcotest prop_simplify_shrinks;
        ] );
      ( "print",
        [
          Alcotest.test_case "basic" `Quick test_print;
          Alcotest.test_case "captures" `Quick test_print_captures;
          Alcotest.test_case "missing table" `Quick test_print_without_table_raises;
          Alcotest.test_case "float literals" `Quick test_float_literals_roundtrip;
        ] );
    ]
