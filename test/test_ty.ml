(* Unit tests for the run-time type representations. *)

let check_eq_some : type a b. a Ty.t -> b Ty.t -> unit =
 fun a b ->
  match Ty.equal a b with
  | Some Ty.Refl -> ()
  | None -> Alcotest.failf "expected equal: %s vs %s" (Ty.to_string a) (Ty.to_string b)

let check_eq_none : type a b. a Ty.t -> b Ty.t -> unit =
 fun a b ->
  match Ty.equal a b with
  | Some Ty.Refl ->
    Alcotest.failf "expected distinct: %s vs %s" (Ty.to_string a)
      (Ty.to_string b)
  | None -> ()

let test_equal_reflexive () =
  check_eq_some Ty.Int Ty.Int;
  check_eq_some Ty.Float Ty.Float;
  check_eq_some (Ty.Pair (Ty.Int, Ty.Float)) (Ty.Pair (Ty.Int, Ty.Float));
  check_eq_some
    (Ty.Array (Ty.Triple (Ty.Bool, Ty.String, Ty.Unit)))
    (Ty.Array (Ty.Triple (Ty.Bool, Ty.String, Ty.Unit)));
  check_eq_some
    (Ty.Func (Ty.Int, Ty.Option (Ty.List Ty.Float)))
    (Ty.Func (Ty.Int, Ty.Option (Ty.List Ty.Float)))

let test_equal_distinguishes () =
  check_eq_none Ty.Int Ty.Float;
  check_eq_none (Ty.Pair (Ty.Int, Ty.Int)) (Ty.Pair (Ty.Int, Ty.Float));
  check_eq_none (Ty.Array Ty.Int) (Ty.List Ty.Int);
  check_eq_none (Ty.Option Ty.Int) (Ty.Array Ty.Int);
  check_eq_none (Ty.Func (Ty.Int, Ty.Int)) (Ty.Func (Ty.Int, Ty.Bool))

let test_to_string () =
  Alcotest.(check string) "int" "int" (Ty.to_string Ty.Int);
  Alcotest.(check string) "pair" "(int * float)"
    (Ty.to_string (Ty.Pair (Ty.Int, Ty.Float)));
  Alcotest.(check string) "nested" "((int * float) array)"
    (Ty.to_string (Ty.Array (Ty.Pair (Ty.Int, Ty.Float))));
  Alcotest.(check string) "func" "(int -> (bool list))"
    (Ty.to_string (Ty.Func (Ty.Int, Ty.List Ty.Bool)));
  Alcotest.(check string) "triple" "(int * string * (float option))"
    (Ty.to_string (Ty.Triple (Ty.Int, Ty.String, Ty.Option Ty.Float)))

let test_type_strings_are_valid_annotations () =
  (* Printed types must splice into generated code; check a few against the
     compiler by round-tripping through Canon's default literals. *)
  let check : type a. a Ty.t -> unit =
   fun ty ->
    match Canon.default_literal ty with
    | None -> ()
    | Some lit ->
      Alcotest.(check bool)
        (Printf.sprintf "literal %s non-empty for %s" lit (Ty.to_string ty))
        true
        (String.length lit > 0)
  in
  check Ty.Int;
  check (Ty.Pair (Ty.Float, Ty.Array Ty.Int));
  check (Ty.Option (Ty.List Ty.String))

let test_pp_value () =
  let s : type a. a Ty.t -> a -> string =
   fun ty v -> Format.asprintf "%a" (Ty.pp_value ty) v
  in
  Alcotest.(check string) "int" "42" (s Ty.Int 42);
  Alcotest.(check string) "pair" "(1, true)" (s (Ty.Pair (Ty.Int, Ty.Bool)) (1, true));
  Alcotest.(check string) "array" "[|1; 2; 3|]" (s (Ty.Array Ty.Int) [| 1; 2; 3 |]);
  Alcotest.(check string) "list" "[1; 2]" (s (Ty.List Ty.Int) [ 1; 2 ]);
  Alcotest.(check string) "none" "None" (s (Ty.Option Ty.Int) None);
  Alcotest.(check string) "some" "Some 3" (s (Ty.Option Ty.Int) (Some 3));
  Alcotest.(check string) "fun" "<fun>" (s (Ty.Func (Ty.Int, Ty.Int)) succ)

let test_compare_values () =
  let c : type a. a Ty.t -> a -> a -> int = Ty.compare_values in
  Alcotest.(check int) "int lt" (-1) (c Ty.Int 1 2);
  Alcotest.(check int) "pair"
    (compare (1, "b") (1, "a"))
    (c (Ty.Pair (Ty.Int, Ty.String)) (1, "b") (1, "a"));
  Alcotest.(check int) "array len" (-1) (c (Ty.Array Ty.Int) [| 1 |] [| 1; 2 |]);
  Alcotest.(check int) "array elt" 1 (c (Ty.Array Ty.Int) [| 2 |] [| 1; 9 |]);
  Alcotest.(check int) "list eq" 0 (c (Ty.List Ty.Int) [ 1; 2 ] [ 1; 2 ]);
  Alcotest.(check int) "opt" (-1) (c (Ty.Option Ty.Int) None (Some 0));
  Alcotest.check_raises "func" (Invalid_argument "Ty.compare_values: functions")
    (fun () -> ignore (c (Ty.Func (Ty.Int, Ty.Int)) succ succ))

let prop_compare_matches_polymorphic =
  QCheck.Test.make ~name:"Ty.compare_values agrees with compare on int pairs"
    ~count:200
    QCheck.(pair (pair small_int small_int) (pair small_int small_int))
    (fun (a, b) ->
      let ty = Ty.Pair (Ty.Int, Ty.Int) in
      let sign x = Stdlib.compare x 0 in
      sign (Ty.compare_values ty a b) = sign (Stdlib.compare a b))

let () =
  Alcotest.run "ty"
    [
      ( "equal",
        [
          Alcotest.test_case "reflexive" `Quick test_equal_reflexive;
          Alcotest.test_case "distinguishes" `Quick test_equal_distinguishes;
        ] );
      ( "print",
        [
          Alcotest.test_case "to_string" `Quick test_to_string;
          Alcotest.test_case "annotations" `Quick
            test_type_strings_are_valid_annotations;
          Alcotest.test_case "pp_value" `Quick test_pp_value;
        ] );
      ( "compare",
        [
          Alcotest.test_case "compare_values" `Quick test_compare_values;
          QCheck_alcotest.to_alcotest prop_compare_matches_polymorphic;
        ] );
    ]
