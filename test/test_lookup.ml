(* Unit and property tests for the Lookup multimap (the GroupBy sink). *)

let test_empty () =
  let l : (int, string) Lookup.t = Lookup.create () in
  Alcotest.(check int) "length" 0 (Lookup.length l);
  Alcotest.(check int) "total" 0 (Lookup.total_count l);
  Alcotest.(check bool) "mem" false (Lookup.mem l 1);
  Alcotest.(check (array string)) "find" [||] (Lookup.find l 1);
  Alcotest.(check (array int)) "keys" [||] (Lookup.keys l)

let test_put_and_find () =
  let l = Lookup.create () in
  let l = Lookup.put l "a" 1 in
  let l = Lookup.put l "b" 2 in
  let l = Lookup.put l "a" 3 in
  Alcotest.(check int) "length" 2 (Lookup.length l);
  Alcotest.(check int) "total" 3 (Lookup.total_count l);
  Alcotest.(check (array int)) "a" [| 1; 3 |] (Lookup.find l "a");
  Alcotest.(check (array int)) "b" [| 2 |] (Lookup.find l "b");
  Alcotest.(check (array int)) "absent" [||] (Lookup.find l "c")

let test_key_order_is_first_appearance () =
  let l = Lookup.create () in
  let l = List.fold_left (fun l (k, v) -> Lookup.put l k v) l
      [ "z", 1; "a", 2; "z", 3; "m", 4; "a", 5 ]
  in
  Alcotest.(check (array string)) "keys" [| "z"; "a"; "m" |] (Lookup.keys l)

let test_groupings () =
  let l = Lookup.create () in
  let l = List.fold_left (fun l v -> Lookup.put l (v mod 2) v) l [ 1; 2; 3; 4 ] in
  let gs = Lookup.groupings l in
  Alcotest.(check int) "ngroups" 2 (Array.length gs);
  Alcotest.(check (pair int (array int))) "odd first" (1, [| 1; 3 |]) gs.(0);
  Alcotest.(check (pair int (array int))) "even" (0, [| 2; 4 |]) gs.(1)

let test_fold_iter () =
  let l = Lookup.create () in
  let l = List.fold_left (fun l v -> Lookup.put l (v mod 3) v) l
      [ 0; 1; 2; 3; 4; 5 ]
  in
  let total = Lookup.fold (fun acc _ vs -> acc + Array.length vs) 0 l in
  Alcotest.(check int) "fold counts all" 6 total;
  let seen = ref 0 in
  Lookup.iter (fun _ vs -> seen := !seen + Array.length vs) l;
  Alcotest.(check int) "iter counts all" 6 !seen

let test_agg_update () =
  let a = Lookup.Agg.create ~seed:0 () in
  Lookup.Agg.update a "x" (fun s -> s + 1);
  Lookup.Agg.update a "x" (fun s -> s + 1);
  Lookup.Agg.update a "y" (fun s -> s + 10);
  Alcotest.(check (option int)) "x" (Some 2) (Lookup.Agg.find_opt a "x");
  Alcotest.(check (option int)) "y" (Some 10) (Lookup.Agg.find_opt a "y");
  Alcotest.(check (option int)) "absent" None (Lookup.Agg.find_opt a "z");
  Alcotest.(check int) "length" 2 (Lookup.Agg.length a);
  Alcotest.(check (array (pair string int)))
    "entries in first-appearance order"
    [| "x", 2; "y", 10 |]
    (Lookup.Agg.entries a)

let test_agg_combine () =
  let a = Lookup.Agg.create ~seed:0 () in
  Lookup.Agg.update a 1 (fun s -> s + 5);
  Lookup.Agg.update a 2 (fun s -> s + 7);
  let b = Lookup.Agg.create ~seed:0 () in
  Lookup.Agg.update b 2 (fun s -> s + 3);
  Lookup.Agg.update b 3 (fun s -> s + 9);
  let c = Lookup.Agg.combine a b ( + ) in
  Alcotest.(check (option int)) "1" (Some 5) (Lookup.Agg.find_opt c 1);
  Alcotest.(check (option int)) "2" (Some 10) (Lookup.Agg.find_opt c 2);
  Alcotest.(check (option int)) "3" (Some 9) (Lookup.Agg.find_opt c 3)

(* Property: Lookup agrees with a naive association-list grouping. *)
let prop_matches_naive =
  QCheck.Test.make ~name:"Lookup.groupings = naive grouping" ~count:200
    QCheck.(list (pair (int_bound 5) small_int))
    (fun pairs ->
      let l =
        List.fold_left (fun l (k, v) -> Lookup.put l k v) (Lookup.create ())
          pairs
      in
      let naive_keys =
        List.fold_left
          (fun ks (k, _) -> if List.mem k ks then ks else ks @ [ k ])
          [] pairs
      in
      let naive =
        List.map
          (fun k ->
            k, List.filter_map (fun (k', v) -> if k = k' then Some v else None) pairs)
          naive_keys
      in
      let got =
        Array.to_list
          (Array.map (fun (k, vs) -> k, Array.to_list vs) (Lookup.groupings l))
      in
      got = naive)

let prop_agg_is_fold =
  QCheck.Test.make ~name:"Agg.update folds per key" ~count:200
    QCheck.(list (pair (int_bound 4) small_int))
    (fun pairs ->
      let a = Lookup.Agg.create ~seed:0 () in
      List.iter (fun (k, v) -> Lookup.Agg.update a k (fun s -> s + v)) pairs;
      List.for_all
        (fun (k, _) ->
          let expected =
            List.fold_left
              (fun s (k', v) -> if k = k' then s + v else s)
              0 pairs
          in
          Lookup.Agg.find_opt a k = Some expected)
        pairs)

let () =
  Alcotest.run "lookup"
    [
      ( "basic",
        [
          Alcotest.test_case "empty" `Quick test_empty;
          Alcotest.test_case "put_find" `Quick test_put_and_find;
          Alcotest.test_case "key order" `Quick test_key_order_is_first_appearance;
          Alcotest.test_case "groupings" `Quick test_groupings;
          Alcotest.test_case "fold_iter" `Quick test_fold_iter;
        ] );
      ( "agg",
        [
          Alcotest.test_case "update" `Quick test_agg_update;
          Alcotest.test_case "combine" `Quick test_agg_combine;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_matches_naive;
          QCheck_alcotest.to_alcotest prop_agg_is_fold;
        ] );
    ]
