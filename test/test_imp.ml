(* The statement-block machinery behind the code generator: insertion
   points must behave like the paper's α/µ/ω pointers (Figs. 5 and 9). *)

let render b = Block.render b

let test_lines_in_order () =
  let b = Block.create () in
  Block.line b "a;";
  Block.line b "b;";
  Alcotest.(check string) "ordered" "a;\nb;\n" (render b)

let test_linef () =
  let b = Block.create () in
  Block.linef b "x%d;" 7;
  Alcotest.(check string) "formatted" "x7;\n" (render b)

let test_inline_is_insertion_point () =
  (* Appending to an inline block inserts at its position even after the
     parent has grown past it — the α/ω pointer behaviour. *)
  let b = Block.create () in
  let alpha = Block.inline b in
  Block.line b "loop;";
  let omega = Block.inline b in
  Block.line alpha "decl;";
  Block.line omega "ret;";
  Block.line alpha "decl2;";
  Alcotest.(check string) "pointer insertion" "decl;\ndecl2;\nloop;\nret;\n"
    (render b)

let test_inline_shares_indentation () =
  let b = Block.create () in
  let sub = Block.inline b in
  Block.line sub "inner;";
  Block.line b "outer;";
  Alcotest.(check string) "no extra indent" "inner;\nouter;\n" (render b)

let test_indented_body () =
  let b = Block.create () in
  Block.line b "for i = 0 to 3 do";
  let body = Block.indented b in
  Block.line body "x;";
  Block.line b "done;";
  (* The delimited body is closed with a unit so any statement sequence
     inside is a valid expression. *)
  Alcotest.(check string) "indent + unit close"
    "for i = 0 to 3 do\n  x;\n  ()\ndone;\n" (render b)

let test_nested_indentation_levels () =
  let b = Block.create () in
  Block.line b "l0;";
  let one = Block.indented b in
  Block.line one "l1;";
  let two = Block.indented one in
  Block.line two "l2;";
  Alcotest.(check string) "two levels"
    "l0;\n  l1;\n    l2;\n    ()\n  ()\n" (render b)

let test_stacked_frames_like_fig9 () =
  (* Simulate entering a nested loop: the inner (α', µ', ω') triple lives
     inside the outer µ, and appends to the outer µ land after the inner
     loop's lines. *)
  let outer_mu = Block.create () in
  let alpha' = Block.inline outer_mu in
  Block.line outer_mu "for inner do";
  let mu' = Block.indented outer_mu in
  Block.line outer_mu "done;";
  let omega' = Block.inline outer_mu in
  Block.line alpha' "let acc = ref 0 in";
  Block.line mu' "acc := !acc + x;";
  Block.line omega' "let elem2 = !acc in";
  Block.line outer_mu "consume elem2;";
  Alcotest.(check string) "fig 9 layout"
    "let acc = ref 0 in\n\
     for inner do\n\
    \  acc := !acc + x;\n\
    \  ()\n\
     done;\n\
     let elem2 = !acc in\n\
     consume elem2;\n"
    (render outer_mu)

let test_render_with_base_indent () =
  let b = Block.create () in
  Block.line b "x;";
  Alcotest.(check string) "indent 2" "    x;\n" (Block.render ~indent:2 b)

let test_is_empty () =
  let b = Block.create () in
  Alcotest.(check bool) "fresh empty" true (Block.is_empty b);
  let sub = Block.inline b in
  Alcotest.(check bool) "empty sub-blocks stay empty" true (Block.is_empty b);
  Block.line sub "x;";
  Alcotest.(check bool) "line in sub-block" false (Block.is_empty b)

let () =
  Alcotest.run "imp"
    [
      ( "block",
        [
          Alcotest.test_case "lines in order" `Quick test_lines_in_order;
          Alcotest.test_case "linef" `Quick test_linef;
          Alcotest.test_case "inline insertion" `Quick test_inline_is_insertion_point;
          Alcotest.test_case "inline indentation" `Quick test_inline_shares_indentation;
          Alcotest.test_case "indented body" `Quick test_indented_body;
          Alcotest.test_case "nested levels" `Quick test_nested_indentation_levels;
          Alcotest.test_case "fig-9 stack" `Quick test_stacked_frames_like_fig9;
          Alcotest.test_case "base indent" `Quick test_render_with_base_indent;
          Alcotest.test_case "is_empty" `Quick test_is_empty;
        ] );
    ]
