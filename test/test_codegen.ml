(* Structure of the generated code: the automaton's transitions must
   produce fused loops with no iterator machinery, matching the paper's
   figures. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let check_contains src needle =
  if not (contains ~needle src) then
    Alcotest.failf "generated code should contain %S:\n%s" needle src

let check_absent src needle =
  if contains ~needle src then
    Alcotest.failf "generated code should NOT contain %S:\n%s" needle src

let gen_q q = (Codegen.generate (Canon.of_query q)).Codegen.source

let gen_s sq = (Codegen.generate (Canon.of_scalar sq)).Codegen.source

let test_flat_query_is_one_loop () =
  let src =
    gen_s
      (ints [| 1 |]
      |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
      |> Query.select (fun x -> I.(x * x))
      |> Query.sum_int)
  in
  check_contains src "for ";
  check_contains src "Stdlib.Array.unsafe_get";
  (* Iterator fusion: exactly one loop, lambdas inlined, no closures. *)
  let count_occurrences needle s =
    let n = ref 0 in
    let len = String.length needle in
    for i = 0 to String.length s - len do
      if String.sub s i len = needle then incr n
    done;
    !n
  in
  Alcotest.(check int) "single loop" 1 (count_occurrences "for " src);
  check_absent src "fun ";
  check_absent src "move_next"

let test_predicate_moves_body_inside_conditional () =
  let src =
    gen_s (ints [| 1 |] |> Query.where (fun x -> I.(x > Expr.int 0)) |> Query.count)
  in
  check_contains src "if (";
  check_contains src "then begin"

let test_source_specialization () =
  (* Array sources iterate by index; Range needs no array at all. *)
  let arr_src = gen_q (ints [| 1 |]) in
  check_contains arr_src "Stdlib.Array.unsafe_get";
  let range_src = gen_q (Query.range ~start:5 ~count:10) in
  check_absent range_src "unsafe_get";
  check_contains range_src "for ";
  let repeat_src = gen_q (Query.repeat Ty.Int 5 ~count:10) in
  check_absent repeat_src "unsafe_get"

let test_captures_become_env_slots () =
  let src = gen_q (ints [| 1; 2 |]) in
  check_contains src "__c0 : (int array)";
  check_contains src "Stdlib.Array.get __env 0";
  (* Two structurally identical queries over different arrays generate
     identical source: the query-cache key property. *)
  let src2 = gen_q (ints [| 9; 9; 9 |]) in
  Alcotest.(check string) "identical source" src src2

let test_nested_loops_for_selectmany () =
  let q =
    ints [| 1; 2 |]
    |> Query.select_many (fun _x -> Query.of_array Ty.Int [| 3; 4 |])
    |> Query.sum_int
  in
  let src = gen_s q in
  let count_for s =
    let n = ref 0 in
    for i = 0 to String.length s - 4 do
      if String.sub s i 4 = "for " then incr n
    done;
    !n
  in
  Alcotest.(check int) "two loops" 2 (count_for src);
  (* The Sum of the outer query must update inside the innermost loop. *)
  check_contains src "done;"

let test_agg_declarations_in_prelude () =
  let src = gen_s (Query.sum_float (Query.of_array Ty.Float [| 1.0 |])) in
  check_contains src "ref (0.)";
  check_contains src "__result := Stdlib.Obj.repr"

let test_group_by_sink () =
  let src = gen_q (ints [| 1 |] |> Query.group_by (fun x -> I.(x mod Expr.int 2))) in
  check_contains src "Stdlib.Hashtbl.create";
  check_contains src "Stdlib.Hashtbl.find_opt";
  check_contains src "_order"

let test_group_by_agg_stores_partials () =
  let src =
    gen_q
      (ints [| 1 |]
      |> Query.group_by_agg
           ~key:(fun x -> I.(x mod Expr.int 2))
           ~seed:(Expr.int 0)
           ~step:(fun acc _ -> I.(acc + Expr.int 1)))
  in
  check_contains src "Stdlib.Hashtbl.create";
  (* Aggregating sink: no per-key bags. *)
  check_absent src ":: !__b"

let test_sinking_state_starts_new_loop () =
  let q =
    ints [| 1 |]
    |> Query.group_by (fun x -> I.(x mod Expr.int 2))
    |> Query.select (fun g -> Expr.Fst g)
  in
  let src = gen_q q in
  let count_for s =
    let n = ref 0 in
    for i = 0 to String.length s - 4 do
      if String.sub s i 4 = "for " then incr n
    done;
    !n
  in
  Alcotest.(check int) "loop over sink" 2 (count_for src)

let test_require_nonempty_check () =
  let src = gen_s (Query.min_elt (Query.of_array Ty.Float [| 1.0 |])) in
  check_contains src Codegen.empty_sequence_message

let test_hash_join_structure () =
  let pairs xs = Query.of_array (Ty.Pair (Ty.Int, Ty.Int)) xs in
  let q =
    Query.join
      ~inner:(pairs [| 1, 2 |])
      ~outer_key:(fun l -> Expr.Fst l)
      ~inner_key:(fun r -> Expr.Fst r)
      ~result:(fun l r -> Expr.Pair (Expr.Snd l, Expr.Snd r))
      (pairs [| 1, 3 |])
  in
  let src = gen_q q in
  check_contains src "Stdlib.Hashtbl.create";
  check_contains src "Stdlib.List.iter";
  (* The build side loops before the probe loop; two loops total. *)
  let count_for s =
    let n = ref 0 in
    for i = 0 to String.length s - 4 do
      if String.sub s i 4 = "for " then incr n
    done;
    !n
  in
  Alcotest.(check int) "build + probe loops" 2 (count_for src);
  (* With the flag off, the nested-loop join has no hash table. *)
  Canon.hash_join_enabled := false;
  let nested_src = gen_q q in
  Canon.hash_join_enabled := true;
  check_absent nested_src "Hashtbl"

let test_sorted_sink_structure () =
  let q =
    ints [| 1 |]
    |> Query.order_by (fun x -> I.(x mod Expr.int 4))
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 4))
         ~seed:(Expr.int 0)
         ~step:(fun acc x -> I.(acc + x))
  in
  let src = gen_q q in
  (* One-pass grouping: no hash table after the sort. *)
  check_absent src "Hashtbl";
  check_contains src "_key";
  check_contains src "_acc"

let test_early_exit_structure () =
  let with_exit = gen_s (Query.first (ints [| 1 |])) in
  check_contains with_exit "let exception Steno_brk";
  check_contains with_exit "raise_notrace";
  (* Chains without early-exit operators carry no handler. *)
  let without = gen_s (Query.sum_int (ints [| 1 |])) in
  check_absent without "exception Steno_brk";
  check_absent without "with Steno_brk"

let test_invalid_chain_rejected () =
  let dummy_agg : Quil.agg =
    {
      Quil.accs =
        [ { Quil.seed = (fun _ _ -> "0");
            step = (fun ~accs:_ ~elem:_ _ _ -> "0");
            first = None } ];
      first_element = false;
      require_nonempty = false;
      early_exit = None;
      result = (fun ~accs:_ _ _ -> "0");
    }
  in
  let chain =
    {
      Quil.src = Quil.Src_range { start = (fun _ _ -> "0"); count = (fun _ _ -> "1") };
      ops = [ Quil.Agg dummy_agg; Quil.Agg dummy_agg ];
    }
  in
  match Codegen.generate chain with
  | exception Codegen.Invalid_chain _ -> ()
  | _ -> Alcotest.fail "invalid chain accepted"

let test_generated_code_compiles () =
  (* Every shape of generated code must be accepted by the compiler. *)
  if Dynload.is_available () then begin
    let sources =
      [
        gen_q (ints [| 1 |] |> Query.order_by (fun x -> I.(Expr.int 0 - x)));
        gen_q (ints [| 1 |] |> Query.distinct |> Query.rev);
        gen_q (ints [| 1; 2; 3 |] |> Query.take 2 |> Query.skip 1);
        gen_q (ints [| 1 |] |> Query.take_while (fun x -> I.(x < Expr.int 2)));
        gen_q (ints [| 1 |] |> Query.skip_while (fun x -> I.(x < Expr.int 2)));
        gen_s (Query.average (Query.of_array Ty.Float [| 1.0 |]));
        gen_s (Query.max_by (fun x -> I.(x mod Expr.int 3)) (ints [| 1 |]));
        gen_s (Query.first (ints [| 1 |]));
        gen_s (Query.for_all (fun x -> I.(x > Expr.int 0)) (ints [| 1 |]));
        gen_s (Query.contains (Expr.int 3) (ints [| 1 |]));
      ]
    in
    List.iter (fun source -> ignore (Dynload.compile ~source)) sources
  end

let () =
  Alcotest.run "codegen"
    [
      ( "structure",
        [
          Alcotest.test_case "fused flat loop" `Quick test_flat_query_is_one_loop;
          Alcotest.test_case "pred conditional" `Quick
            test_predicate_moves_body_inside_conditional;
          Alcotest.test_case "source specialization" `Quick test_source_specialization;
          Alcotest.test_case "capture slots" `Quick test_captures_become_env_slots;
          Alcotest.test_case "nested loops" `Quick test_nested_loops_for_selectmany;
          Alcotest.test_case "agg prelude" `Quick test_agg_declarations_in_prelude;
          Alcotest.test_case "group_by sink" `Quick test_group_by_sink;
          Alcotest.test_case "group_by_agg" `Quick test_group_by_agg_stores_partials;
          Alcotest.test_case "sinking restarts loop" `Quick
            test_sinking_state_starts_new_loop;
          Alcotest.test_case "nonempty check" `Quick test_require_nonempty_check;
          Alcotest.test_case "hash join structure" `Quick test_hash_join_structure;
          Alcotest.test_case "sorted sink structure" `Quick test_sorted_sink_structure;
          Alcotest.test_case "early exit structure" `Quick test_early_exit_structure;
          Alcotest.test_case "invalid chain" `Quick test_invalid_chain_rejected;
        ] );
      ( "compilation",
        [ Alcotest.test_case "all shapes compile" `Slow test_generated_code_compiles ]
      );
    ]
