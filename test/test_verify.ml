(* The translation validator end to end: an injected unsound rewrite is
   rejected (fallback on a default engine, [Check_failed] on a strict
   one, both counted into [steno_verify_total]); a deliberately broken
   law table rejects sound plans; and a property suite checks that
   validated pipelines compute exactly what the Reference semantics
   say, on every backend. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let data = [| 5; 2; 8; 2; 11; 14; 3; 8; 0; 7; 12; 9 |]

let even x = I.(x mod Expr.int 2 = Expr.int 0)

let engine ?(strict = false) ?metrics ?(optimize = true) backend =
  let reg =
    match metrics with Some m -> m | None -> Metrics.create ()
  in
  Steno.Engine.(
    create { default_config with backend; optimize; strict; metrics = reg })

let verify_count reg result =
  Metrics.counter_value
    (Metrics.counter reg "steno_verify" ~labels:[ "result", result ])

let codes ds = List.map (fun d -> d.Check.d_code) ds

(* An unsound rewrite with a forged justification: drop any [Where],
   claiming its (non-constant) predicate is a tautology.  The validator
   re-derives the truth of the captured predicate and must refuse. *)
let unsound_hook =
  {
    Opt.h =
      (fun (type a) (q : a Query.t) : (a Query.t * Opt.event) option ->
        match q with
        | Query.Where (q0, p) ->
          Some
            ( q0,
              {
                Opt.ev_rule = "where-const-true";
                ev_facts = [ Check.Equiv.Pred_true p.Expr.body ];
              } )
        | _ -> None);
  }

let with_hook f =
  Opt.set_test_hook (Some unsound_hook);
  Fun.protect ~finally:(fun () -> Opt.set_test_hook None) f

let test_unsound_rewrite_rejected () =
  let q = ints data |> Query.where even in
  let expected = Reference.to_list q in
  with_hook (fun () ->
      let reg = Metrics.create () in
      let eng = engine ~metrics:reg Steno.Fused in
      let p = Steno.Engine.prepare eng q in
      (* The optimized (filter-less) plan was rejected: the preparation
         runs the plan as written. *)
      Alcotest.(check (list int))
        "fallback runs the unoptimized plan" expected
        (Array.to_list (Steno.Prepared.run p));
      Alcotest.(check (list string))
        "no rules survive the rejection" []
        (Steno.Prepared.rewrite_log p);
      Alcotest.(check int) "rejected counted" 1 (verify_count reg "rejected");
      Alcotest.(check int) "nothing accepted" 0
        (verify_count reg "accepted");
      (* The SC012 diagnostic rides on the preparation. *)
      Alcotest.(check bool) "SC012 reported" true
        (List.mem "SC012" (codes (Steno.Prepared.diagnostics p))))

let test_unsound_rewrite_strict_raises () =
  let q = ints data |> Query.where even in
  with_hook (fun () ->
      let reg = Metrics.create () in
      let eng = engine ~strict:true ~metrics:reg Steno.Fused in
      (match Steno.Engine.prepare eng q with
      | exception Steno.Check_failed errs ->
        Alcotest.(check (list string)) "SC012 error" [ "SC012" ] (codes errs)
      | _ -> Alcotest.fail "strict engine accepted an unsound rewrite");
      Alcotest.(check int) "rejected counted" 1 (verify_count reg "rejected");
      (* try_prepare reports the same refusal as a value. *)
      match Steno.Engine.try_prepare eng q with
      | Error (Steno.Engine.Check_error errs) ->
        Alcotest.(check (list string)) "try_prepare SC012" [ "SC012" ]
          (codes errs)
      | Ok _ -> Alcotest.fail "try_prepare accepted an unsound rewrite"
      | Error _ -> Alcotest.fail "wrong refusal kind")

let test_sound_rewrites_accepted () =
  let reg = Metrics.create () in
  let eng = engine ~metrics:reg Steno.Fused in
  let q = ints data |> Query.where even |> Query.where even in
  let p = Steno.Engine.prepare eng q in
  Alcotest.(check (list string))
    "fused filters" [ "where-fuse" ]
    (Steno.Prepared.rewrite_log p);
  Alcotest.(check int) "accepted counted" 1 (verify_count reg "accepted");
  Alcotest.(check int) "nothing rejected" 0 (verify_count reg "rejected");
  Alcotest.(check bool) "no SC012" false
    (List.mem "SC012" (codes (Steno.Prepared.diagnostics p)));
  (* The engine's verify entry point discharges the same obligations. *)
  let obs = Steno.Engine.verify eng q in
  Alcotest.(check bool) "obligations discharged" true
    (Check.Equiv.accepted obs);
  Alcotest.(check bool) "where-fuse among them" true
    (List.exists (fun o -> o.Check.Equiv.o_rule = "where-fuse") obs)

(* Sabotaged side conditions: with every law rewritten to fail, sound
   plans are rejected — the engine really consults the table. *)
let test_broken_law_table_rejects () =
  let broken =
    List.map
      (fun (l : Check.Equiv.law) ->
        { l with Check.Equiv.l_check = (fun _ -> Error "sabotaged") })
      Check.Equiv.laws
  in
  let q = ints data |> Query.where even |> Query.where even in
  let q', events = Opt.query_ev q in
  let good = Check.Equiv.validate_query ~before:q ~after:q' events in
  Alcotest.(check bool) "default table accepts" true
    (Check.Equiv.accepted good);
  let bad =
    Check.Equiv.validate_query ~laws:broken ~before:q ~after:q' events
  in
  Alcotest.(check bool) "broken table rejects" false
    (Check.Equiv.accepted bad);
  Alcotest.(check bool) "failure names the rule" true
    (List.exists
       (fun line ->
         String.length line >= 10 && String.sub line 0 10 = "where-fuse")
       (Check.Equiv.failures bad));
  (* An event for a rule with no law at all is rejected too. *)
  let phantom =
    Check.Equiv.validate_query ~before:q ~after:q'
      [ { Opt.ev_rule = "no-such-rule"; ev_facts = [] } ]
  in
  Alcotest.(check bool) "unknown rule rejected" false
    (Check.Equiv.accepted phantom)

(* {2 Property suite: validated pipelines mean what they meant} *)

(* Generator biased toward shapes the property-driven rules rewrite:
   Range sources (distinct, sorted), redundant Distinct/OrderBy/Rev
   pairs, decidable predicates, stacked truncations. *)
let op_gen =
  let open QCheck in
  Gen.oneof
    [
      Gen.map
        (fun k q -> Query.select (fun x -> I.(x + Expr.int k)) q)
        Gen.small_int;
      Gen.map
        (fun k q ->
          Query.where
            (fun x -> I.(x mod Expr.int Stdlib.(2 + (k mod 3)) = Expr.int 0))
            q)
        Gen.small_int;
      Gen.return (fun q -> Query.where (fun _ -> Expr.bool true) q);
      Gen.return
        (fun q ->
          Query.where (fun x -> I.(x mod Expr.int 10 < Expr.int 10)) q);
      Gen.map (fun n q -> Query.take (n mod 12) q) Gen.small_int;
      Gen.map (fun n q -> Query.skip (n mod 6) q) Gen.small_int;
      Gen.return (fun q -> Query.distinct q);
      Gen.return (fun q -> Query.distinct (Query.distinct q));
      Gen.return (fun q -> Query.rev (Query.rev q));
      Gen.return (fun q -> Query.rev q);
      Gen.return (fun q -> Query.order_by (fun x -> x) q);
      Gen.return
        (fun q -> Query.order_by (fun x -> I.(x mod Expr.int 5)) q);
      Gen.return (fun q -> Query.materialize q);
    ]

let source_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun xs -> ints xs) (array_size (int_bound 12) (int_bound 20));
        map
          (fun n -> Query.range ~start:0 ~count:(n mod 16))
          (int_bound 1000);
      ])

let pipeline_gen =
  QCheck.Gen.(pair (list_size (int_bound 8) op_gen) source_gen)

let build (ops, src) = List.fold_left (fun q op -> op q) src ops

let interpreted = [ Steno.Linq; Steno.Fused ]

(* Every generated pipeline must (a) discharge all its obligations and
   (b) compute the Reference answer on every backend with the optimizer
   on.  Interpreted backends take the full 200 cases... *)
let random_validated_differential =
  QCheck.Test.make
    ~name:"validated pipelines match reference (linq, fused)" ~count:200
    (QCheck.make pipeline_gen) (fun input ->
      let q = build input in
      let eng0 = engine Steno.Fused in
      let obs = Steno.Engine.verify eng0 q in
      Check.Equiv.accepted obs
      && List.for_all
           (fun b ->
             Steno.Engine.to_list (engine b) q = Reference.to_list q)
           interpreted)

(* ...while the Native backend, paying a real compile per case, checks a
   thinner slice of the same generator. *)
let random_validated_differential_native =
  QCheck.Test.make
    ~name:"validated pipelines match reference (native)" ~count:12
    (QCheck.make pipeline_gen) (fun input ->
      if not (Steno.native_available ()) then true
      else begin
        let q = build input in
        Steno.Engine.to_list (engine Steno.Native) q = Reference.to_list q
      end)

(* Scalar pipelines through the one scalar rule. *)
let random_scalar_any =
  QCheck.Test.make ~name:"validated Any pipelines match reference"
    ~count:100
    (QCheck.make source_gen) (fun src ->
      let sq = Query.any src in
      let eng0 = engine Steno.Fused in
      Check.Equiv.accepted (Steno.Engine.verify_scalar eng0 sq)
      && List.for_all
           (fun b -> Steno.Engine.scalar (engine b) sq = Reference.scalar sq)
           interpreted)

let () =
  Alcotest.run "verify"
    [
      ( "rejection",
        [
          Alcotest.test_case "unsound rewrite falls back" `Quick
            test_unsound_rewrite_rejected;
          Alcotest.test_case "strict raises" `Quick
            test_unsound_rewrite_strict_raises;
          Alcotest.test_case "sound rewrites accepted" `Quick
            test_sound_rewrites_accepted;
          Alcotest.test_case "broken law table" `Quick
            test_broken_law_table_rejects;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest random_validated_differential;
          QCheck_alcotest.to_alcotest random_validated_differential_native;
          QCheck_alcotest.to_alcotest random_scalar_any;
        ] );
    ]
