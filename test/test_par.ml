(* Multiprocessor execution: partitioning, HomomorphicApply, and the
   automatic Agg_i / Agg* splitting of section 6. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let test_partition_roundtrip () =
  let arr = Array.init 17 (fun i -> i) in
  let parts = Par.partition ~parts:4 arr in
  Alcotest.(check int) "4 parts" 4 (Array.length parts);
  Alcotest.(check (array int)) "concat restores" arr (Par.concat parts);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "balanced" true
        (abs (Array.length p - (17 / 4)) <= 1))
    parts;
  (* Regression (PR 5): more parts than elements used to emit empty
     trailing partitions, each costing a full engine run; parts are now
     capped at the row count. *)
  let tiny = Par.partition ~parts:5 [| 1; 2 |] in
  Alcotest.(check int) "parts capped at rows" 2 (Array.length tiny);
  Alcotest.(check (array int)) "tiny concat" [| 1; 2 |] (Par.concat tiny);
  Array.iter
    (fun p -> Alcotest.(check bool) "no empty partition" false (p = [||]))
    tiny;
  (* An empty input still yields a single (empty) partition. *)
  let empty = Par.partition ~parts:4 ([||] : int array) in
  Alcotest.(check int) "empty input, one partition" 1 (Array.length empty);
  Alcotest.(check (array int)) "empty partition" [||] empty.(0);
  Alcotest.check_raises "zero parts"
    (Invalid_argument "Par.partition: parts must be positive") (fun () ->
      ignore (Par.partition ~parts:0 [| 1 |]))

let test_domain_pool () =
  let results = Domain_pool.run ~workers:4 ~tasks:20 (fun i -> i * i) in
  Alcotest.(check (array int)) "ordered results"
    (Array.init 20 (fun i -> i * i))
    results;
  Alcotest.(check (array int)) "no tasks" [||]
    (Domain_pool.run ~workers:4 ~tasks:0 (fun i -> i));
  (* Exceptions propagate. *)
  Alcotest.check_raises "task failure" Exit (fun () ->
      ignore (Domain_pool.run ~workers:2 ~tasks:8 (fun i -> if i = 5 then raise Exit else i)))

(* The pool is persistent: repeated jobs reuse the same worker domains
   instead of spawning [workers - 1] new ones per call. *)
let test_domain_pool_persistent () =
  ignore (Domain_pool.run ~workers:3 ~tasks:6 (fun i -> i));
  let size_after_first = Domain_pool.pool_size () in
  let jobs_before = Domain_pool.jobs_run () in
  for _ = 1 to 10 do
    ignore (Domain_pool.run ~workers:3 ~tasks:6 (fun i -> i))
  done;
  Alcotest.(check int) "no new domains spawned" size_after_first
    (Domain_pool.pool_size ());
  Alcotest.(check bool) "jobs were submitted to the pool" true
    (Domain_pool.jobs_run () >= jobs_before);
  (* Nested submission from inside a task must not deadlock. *)
  let nested =
    Domain_pool.run ~workers:2 ~tasks:3 (fun i ->
        Array.fold_left ( + ) 0
          (Domain_pool.run ~workers:2 ~tasks:4 (fun j -> (i * 10) + j)))
  in
  Alcotest.(check (array int)) "nested results"
    [| 6; 46; 86 |] nested

let test_domain_pool_run_until () =
  (* Results computed before the stop are kept; unstarted tasks are
     abandoned as None. *)
  let results =
    Domain_pool.run_until ~workers:1 ~tasks:10
      ~stop:(fun r -> r = 3)
      (fun i -> i)
  in
  Alcotest.(check int) "10 slots" 10 (Array.length results);
  Alcotest.(check (option int)) "first ran" (Some 0) results.(0);
  Alcotest.(check (option int)) "stopper ran" (Some 3) results.(3);
  Alcotest.(check (option int)) "tail abandoned" None results.(9);
  (* Without a stopping result, everything runs. *)
  let all =
    Domain_pool.run_until ~workers:4 ~tasks:12 ~stop:(fun _ -> false) (fun i -> i)
  in
  Array.iteri
    (fun i r -> Alcotest.(check (option int)) "ran" (Some i) r)
    all

let test_homomorphic_apply () =
  let data = Array.init 100 (fun i -> i) in
  let parts = Par.partition ~parts:7 data in
  let build part =
    ints part
    |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
    |> Query.select (fun x -> I.(x * x))
  in
  let out = Par.homomorphic_apply ~workers:4 Ty.Int build parts in
  let sequential = Steno.to_array (build data) in
  Alcotest.(check (array int)) "same as sequential" sequential (Par.concat out)

let test_scalar_per_partition () =
  let data = Array.init 1000 (fun i -> i) in
  let parts = Par.partition ~parts:8 data in
  let total =
    Par.scalar_per_partition ~workers:4
      (fun part -> Query.sum_int (ints part))
      ~combine:( + ) parts
  in
  Alcotest.(check int) "partial sums combine" (999 * 1000 / 2) total

let test_is_homomorphic () =
  let src = ints [| 1 |] in
  Alcotest.(check bool) "select" true (Par.is_homomorphic (Query.select (fun x -> x) src));
  Alcotest.(check bool) "where" true (Par.is_homomorphic (Query.where (fun x -> I.(x > Expr.int 0)) src));
  Alcotest.(check bool) "select_many" true
    (Par.is_homomorphic (Query.select_many (fun _ -> Query.range ~start:0 ~count:2) src));
  Alcotest.(check bool) "take is not" false (Par.is_homomorphic (Query.take 1 src));
  Alcotest.(check bool) "order_by is not" false
    (Par.is_homomorphic (Query.order_by (fun x -> x) src));
  Alcotest.(check bool) "group_by is not" false
    (Par.is_homomorphic (Query.group_by (fun x -> x) src));
  Alcotest.(check bool) "distinct is not" false (Par.is_homomorphic (Query.distinct src))

let test_split_scalar () =
  let q = ints (Array.init 50 (fun i -> i)) |> Query.select (fun x -> I.(x * Expr.int 3)) in
  (match Par.split_scalar (Query.sum_int q) with
  | Some (Par.Split { source; _ }) ->
    Alcotest.(check int) "source found" 50 (Array.length source)
  | None -> Alcotest.fail "sum over homomorphic prefix must split");
  (* Non-homomorphic prefix cannot split. *)
  (match Par.split_scalar (Query.sum_int (Query.take 3 q)) with
  | None -> ()
  | Some _ -> Alcotest.fail "take must prevent splitting");
  (* Average's partial is a (sum, count) pair, not a float: it is beyond
     the legacy same-typed API (but decomposes — see below). *)
  (match Par.split_scalar (Query.average (Query.of_array Ty.Float [| 1.0 |])) with
  | None -> ()
  | Some _ -> Alcotest.fail "average must not split (same-typed API)");
  (* Range sources (no captured array) cannot split. *)
  match Par.split_scalar (Query.sum_int (Query.range ~start:0 ~count:5)) with
  | None -> ()
  | Some _ -> Alcotest.fail "range source must not split"

(* The typed decomposition framework covers what split_scalar cannot. *)
let test_decompose_coverage () =
  let must_decompose : type s. string -> s Query.sq -> unit =
   fun name sq ->
    match Par.decompose sq with
    | Some _ -> ()
    | None -> Alcotest.failf "%s must decompose" name
  in
  let must_not : type s. string -> s Query.sq -> unit =
   fun name sq ->
    match Par.decompose sq with
    | None -> ()
    | Some _ -> Alcotest.failf "%s must not decompose" name
  in
  let fdata = Query.of_array Ty.Float [| 1.0; 2.0; 3.0 |] in
  let idata = ints [| 1; 2; 3 |] in
  must_decompose "average" (Query.average fdata);
  must_decompose "first" (Query.first idata);
  must_decompose "last" (Query.last idata);
  must_decompose "any" (Query.any idata);
  must_decompose "contains" (Query.contains (Expr.int 2) idata);
  must_decompose "declared combiner"
    (idata
    |> Query.aggregate ~combine:( + ) ~seed:(Expr.int 0) ~step:(fun a x ->
           I.(a + x)));
  must_decompose "map_scalar over average"
    (Query.average fdata |> Query.map_scalar (fun r -> Expr.Infix.(r *. r)));
  must_not "undeclared aggregate"
    (idata |> Query.aggregate ~seed:(Expr.int 0) ~step:(fun a x -> I.(a + x)));
  must_not "element_at" (Query.element_at 1 idata);
  must_not "take prefix" (Query.sum_int (Query.take 2 idata));
  must_not "range source" (Query.sum_int (Query.range ~start:0 ~count:5))

let test_scalar_auto_matches_sequential () =
  let data = Array.init 777 (fun i -> (i * 37) mod 101) in
  let check_auto : type s. string -> s Query.sq -> unit =
   fun name sq ->
    let seq = Reference.scalar sq in
    let par = Par.scalar_auto ~workers:4 ~parts:5 sq in
    if compare par seq <> 0 then Alcotest.failf "%s: parallel <> sequential" name
  in
  let q = ints data |> Query.where (fun x -> I.(x mod Expr.int 3 = Expr.int 1)) in
  check_auto "sum" (Query.sum_int q);
  check_auto "count" (Query.count q);
  check_auto "min" (Query.min_elt q);
  check_auto "max" (Query.max_elt q);
  check_auto "min_by" (Query.min_by (fun x -> I.(x mod Expr.int 7)) q);
  check_auto "any" (Query.any q);
  check_auto "exists" (Query.exists (fun x -> I.(x = Expr.int 55)) q);
  check_auto "for_all" (Query.for_all (fun x -> I.(x < Expr.int 1000)) q);
  check_auto "contains" (Query.contains (Expr.int 4) q);
  (* Since PR 5 these execute across partitions (decomposed partials),
     not through a sequential fallback. *)
  check_auto "first" (Query.first q);
  check_auto "last" (Query.last q);
  check_auto "average"
    (Query.average (Query.of_array Ty.Float (Array.init 101 float_of_int)));
  check_auto "declared combiner"
    (q
    |> Query.aggregate ~combine:( + ) ~seed:(Expr.int 0) ~step:(fun a x ->
           I.(a + x)));
  check_auto "map_scalar over average"
    (Query.average (Query.of_array Ty.Float (Array.init 13 float_of_int))
    |> Query.map_scalar (fun r -> Expr.Infix.(r +. r)));
  (* Fallback path: non-splittable query still runs. *)
  check_auto "element_at fallback" (Query.element_at 5 q)

(* Regression (PR 5): rows < workers end-to-end — the capped partitioner
   must not schedule empty engine runs, and results stay exact. *)
let test_fewer_rows_than_workers () =
  let data = [| 42; 7 |] in
  let q = ints data in
  Alcotest.(check int) "sum of 2 rows on 8 workers" 49
    (Par.scalar_auto ~workers:8 ~parts:8 (Query.sum_int q));
  Alcotest.(check int) "first of 2 rows on 8 workers" 42
    (Par.scalar_auto ~workers:8 ~parts:8 (Query.first q));
  Alcotest.(check (array int)) "to_array of 2 rows on 8 workers" data
    (Par.to_array_auto ~workers:8 ~parts:8 q);
  let one = [| 5 |] in
  Alcotest.(check int) "singleton row" 5
    (Par.scalar_auto ~workers:8 ~parts:8 (Query.min_elt (ints one)))

let test_group_aggregate () =
  let data = Array.init 200 (fun i -> (i * 13) mod 29) in
  let q =
    ints data
    |> Query.group_by_agg
         ~key:(fun x -> I.(x mod Expr.int 7))
         ~seed:(Expr.int 0)
         ~step:(fun acc x -> I.(acc + x))
  in
  let seq = Array.of_list (Reference.to_list q) in
  let par = Par.group_aggregate ~workers:4 ~parts:5 ~combine:( + ) q in
  Alcotest.(check (array (pair int int))) "partitioned = sequential" seq par;
  (* Key order is global first-appearance order, preserved by the
     pairwise table merge. *)
  let par1 = Par.group_aggregate ~workers:1 ~parts:1 ~combine:( + ) q in
  Alcotest.(check (array (pair int int))) "order independent of parts" par1 par

let test_scalar_auto_empty_partitions () =
  (* min over data that filters to a single partition's worth. *)
  let data = Array.init 40 (fun i -> i) in
  let q = ints data |> Query.where (fun x -> I.(x = Expr.int 39)) in
  Alcotest.(check int) "min with mostly-empty partials" 39
    (Par.scalar_auto ~workers:4 ~parts:8 (Query.min_elt q));
  let none = ints data |> Query.where (fun x -> I.(x > Expr.int 100)) in
  Alcotest.check_raises "all empty raises" Iterator.No_such_element (fun () ->
      ignore (Par.scalar_auto ~workers:2 ~parts:4 (Query.min_elt none)))

let test_to_array_auto () =
  let data = Array.init 333 (fun i -> (i * 17) mod 97) in
  let q =
    ints data
    |> Query.where (fun x -> I.(x mod Expr.int 3 = Expr.int 0))
    |> Query.select (fun x -> I.(x * Expr.int 2))
  in
  Alcotest.(check (array int)) "homomorphic query parallel = sequential"
    (Steno.to_array q)
    (Par.to_array_auto ~workers:3 ~parts:5 q);
  (* Non-homomorphic queries fall back to sequential and stay correct. *)
  let sorted = q |> Query.order_by (fun x -> I.(Expr.int 0 - x)) in
  Alcotest.(check (array int)) "fallback"
    (Steno.to_array sorted)
    (Par.to_array_auto ~workers:3 ~parts:5 sorted)

let prop_parallel_sum_equals_sequential =
  QCheck.Test.make ~name:"parallel sum = sequential sum for any partitioning"
    ~count:30
    QCheck.(pair (array small_int) (int_range 1 9))
    (fun (data, parts) ->
      let sq = Query.sum_int (ints data) in
      Par.scalar_auto ~workers:3 ~parts sq = Reference.scalar sq)

let () =
  Alcotest.run "par"
    [
      ( "partitioning",
        [
          Alcotest.test_case "roundtrip" `Quick test_partition_roundtrip;
          Alcotest.test_case "domain pool" `Quick test_domain_pool;
          Alcotest.test_case "persistent pool" `Quick test_domain_pool_persistent;
          Alcotest.test_case "run_until" `Quick test_domain_pool_run_until;
        ] );
      ( "execution",
        [
          Alcotest.test_case "homomorphic_apply" `Quick test_homomorphic_apply;
          Alcotest.test_case "scalar per partition" `Quick test_scalar_per_partition;
          Alcotest.test_case "group aggregate" `Quick test_group_aggregate;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "is_homomorphic" `Quick test_is_homomorphic;
          Alcotest.test_case "split_scalar" `Quick test_split_scalar;
          Alcotest.test_case "decompose coverage" `Quick test_decompose_coverage;
          Alcotest.test_case "auto = sequential" `Quick test_scalar_auto_matches_sequential;
          Alcotest.test_case "empty partitions" `Quick test_scalar_auto_empty_partitions;
          Alcotest.test_case "fewer rows than workers" `Quick test_fewer_rows_than_workers;
          Alcotest.test_case "to_array_auto" `Quick test_to_array_auto;
          QCheck_alcotest.to_alcotest prop_parallel_sum_equals_sequential;
        ] );
    ]
