(* Multiprocessor execution: partitioning, HomomorphicApply, and the
   automatic Agg_i / Agg* splitting of section 6. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let test_partition_roundtrip () =
  let arr = Array.init 17 (fun i -> i) in
  let parts = Par.partition ~parts:4 arr in
  Alcotest.(check int) "4 parts" 4 (Array.length parts);
  Alcotest.(check (array int)) "concat restores" arr (Par.concat parts);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "balanced" true
        (abs (Array.length p - (17 / 4)) <= 1))
    parts;
  (* More parts than elements: empty tails allowed. *)
  let tiny = Par.partition ~parts:5 [| 1; 2 |] in
  Alcotest.(check (array int)) "tiny concat" [| 1; 2 |] (Par.concat tiny);
  Alcotest.check_raises "zero parts"
    (Invalid_argument "Par.partition: parts must be positive") (fun () ->
      ignore (Par.partition ~parts:0 [| 1 |]))

let test_domain_pool () =
  let results = Domain_pool.run ~workers:4 ~tasks:20 (fun i -> i * i) in
  Alcotest.(check (array int)) "ordered results"
    (Array.init 20 (fun i -> i * i))
    results;
  Alcotest.(check (array int)) "no tasks" [||]
    (Domain_pool.run ~workers:4 ~tasks:0 (fun i -> i));
  (* Exceptions propagate. *)
  Alcotest.check_raises "task failure" Exit (fun () ->
      ignore (Domain_pool.run ~workers:2 ~tasks:8 (fun i -> if i = 5 then raise Exit else i)))

let test_homomorphic_apply () =
  let data = Array.init 100 (fun i -> i) in
  let parts = Par.partition ~parts:7 data in
  let build part =
    ints part
    |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
    |> Query.select (fun x -> I.(x * x))
  in
  let out = Par.homomorphic_apply ~workers:4 Ty.Int build parts in
  let sequential = Steno.to_array (build data) in
  Alcotest.(check (array int)) "same as sequential" sequential (Par.concat out)

let test_scalar_per_partition () =
  let data = Array.init 1000 (fun i -> i) in
  let parts = Par.partition ~parts:8 data in
  let total =
    Par.scalar_per_partition ~workers:4
      (fun part -> Query.sum_int (ints part))
      ~combine:( + ) parts
  in
  Alcotest.(check int) "partial sums combine" (999 * 1000 / 2) total

let test_is_homomorphic () =
  let src = ints [| 1 |] in
  Alcotest.(check bool) "select" true (Par.is_homomorphic (Query.select (fun x -> x) src));
  Alcotest.(check bool) "where" true (Par.is_homomorphic (Query.where (fun x -> I.(x > Expr.int 0)) src));
  Alcotest.(check bool) "select_many" true
    (Par.is_homomorphic (Query.select_many (fun _ -> Query.range ~start:0 ~count:2) src));
  Alcotest.(check bool) "take is not" false (Par.is_homomorphic (Query.take 1 src));
  Alcotest.(check bool) "order_by is not" false
    (Par.is_homomorphic (Query.order_by (fun x -> x) src));
  Alcotest.(check bool) "group_by is not" false
    (Par.is_homomorphic (Query.group_by (fun x -> x) src));
  Alcotest.(check bool) "distinct is not" false (Par.is_homomorphic (Query.distinct src))

let test_split_scalar () =
  let q = ints (Array.init 50 (fun i -> i)) |> Query.select (fun x -> I.(x * Expr.int 3)) in
  (match Par.split_scalar (Query.sum_int q) with
  | Some (Par.Split { source; _ }) ->
    Alcotest.(check int) "source found" 50 (Array.length source)
  | None -> Alcotest.fail "sum over homomorphic prefix must split");
  (* Non-homomorphic prefix cannot split. *)
  (match Par.split_scalar (Query.sum_int (Query.take 3 q)) with
  | None -> ()
  | Some _ -> Alcotest.fail "take must prevent splitting");
  (* Non-associative aggregates cannot split. *)
  (match Par.split_scalar (Query.average (Query.of_array Ty.Float [| 1.0 |])) with
  | None -> ()
  | Some _ -> Alcotest.fail "average must not split");
  (* Range sources (no captured array) cannot split. *)
  match Par.split_scalar (Query.sum_int (Query.range ~start:0 ~count:5)) with
  | None -> ()
  | Some _ -> Alcotest.fail "range source must not split"

let test_scalar_auto_matches_sequential () =
  let data = Array.init 777 (fun i -> (i * 37) mod 101) in
  let check_auto : type s. string -> s Query.sq -> unit =
   fun name sq ->
    let seq = Reference.scalar sq in
    let par = Par.scalar_auto ~workers:4 ~parts:5 sq in
    if compare par seq <> 0 then Alcotest.failf "%s: parallel <> sequential" name
  in
  let q = ints data |> Query.where (fun x -> I.(x mod Expr.int 3 = Expr.int 1)) in
  check_auto "sum" (Query.sum_int q);
  check_auto "count" (Query.count q);
  check_auto "min" (Query.min_elt q);
  check_auto "max" (Query.max_elt q);
  check_auto "min_by" (Query.min_by (fun x -> I.(x mod Expr.int 7)) q);
  check_auto "any" (Query.any q);
  check_auto "exists" (Query.exists (fun x -> I.(x = Expr.int 55)) q);
  check_auto "for_all" (Query.for_all (fun x -> I.(x < Expr.int 1000)) q);
  check_auto "contains" (Query.contains (Expr.int 4) q);
  (* Fallback path: non-splittable query still runs. *)
  check_auto "average fallback"
    (Query.average (Query.of_array Ty.Float [| 1.0; 2.0; 3.0 |]))

let test_scalar_auto_empty_partitions () =
  (* min over data that filters to a single partition's worth. *)
  let data = Array.init 40 (fun i -> i) in
  let q = ints data |> Query.where (fun x -> I.(x = Expr.int 39)) in
  Alcotest.(check int) "min with mostly-empty partials" 39
    (Par.scalar_auto ~workers:4 ~parts:8 (Query.min_elt q));
  let none = ints data |> Query.where (fun x -> I.(x > Expr.int 100)) in
  Alcotest.check_raises "all empty raises" Iterator.No_such_element (fun () ->
      ignore (Par.scalar_auto ~workers:2 ~parts:4 (Query.min_elt none)))

let test_to_array_auto () =
  let data = Array.init 333 (fun i -> (i * 17) mod 97) in
  let q =
    ints data
    |> Query.where (fun x -> I.(x mod Expr.int 3 = Expr.int 0))
    |> Query.select (fun x -> I.(x * Expr.int 2))
  in
  Alcotest.(check (array int)) "homomorphic query parallel = sequential"
    (Steno.to_array q)
    (Par.to_array_auto ~workers:3 ~parts:5 q);
  (* Non-homomorphic queries fall back to sequential and stay correct. *)
  let sorted = q |> Query.order_by (fun x -> I.(Expr.int 0 - x)) in
  Alcotest.(check (array int)) "fallback"
    (Steno.to_array sorted)
    (Par.to_array_auto ~workers:3 ~parts:5 sorted)

let prop_parallel_sum_equals_sequential =
  QCheck.Test.make ~name:"parallel sum = sequential sum for any partitioning"
    ~count:30
    QCheck.(pair (array small_int) (int_range 1 9))
    (fun (data, parts) ->
      let sq = Query.sum_int (ints data) in
      Par.scalar_auto ~workers:3 ~parts sq = Reference.scalar sq)

let () =
  Alcotest.run "par"
    [
      ( "partitioning",
        [
          Alcotest.test_case "roundtrip" `Quick test_partition_roundtrip;
          Alcotest.test_case "domain pool" `Quick test_domain_pool;
        ] );
      ( "execution",
        [
          Alcotest.test_case "homomorphic_apply" `Quick test_homomorphic_apply;
          Alcotest.test_case "scalar per partition" `Quick test_scalar_per_partition;
        ] );
      ( "splitting",
        [
          Alcotest.test_case "is_homomorphic" `Quick test_is_homomorphic;
          Alcotest.test_case "split_scalar" `Quick test_split_scalar;
          Alcotest.test_case "auto = sequential" `Quick test_scalar_auto_matches_sequential;
          Alcotest.test_case "empty partitions" `Quick test_scalar_auto_empty_partitions;
          Alcotest.test_case "to_array_auto" `Quick test_to_array_auto;
          QCheck_alcotest.to_alcotest prop_parallel_sum_equals_sequential;
        ] );
    ]
