(* The telemetry layer: span nesting, counters, the in-memory collector,
   and the spans the engine emits per pipeline stage. *)

module I = Expr.Infix
module T = Telemetry
module C = Telemetry.Collector

let ints xs = Query.of_array Ty.Int xs

(* Collector mechanics. *)

let test_span_nesting () =
  let c = C.create () in
  let sink = C.sink c in
  let v =
    T.with_span sink "outer" (fun () ->
        T.with_span sink "inner" (fun () -> 41) + 1)
  in
  Alcotest.(check int) "value threaded through" 42 v;
  let spans = C.spans c in
  Alcotest.(check int) "two spans" 2 (List.length spans);
  let inner = Option.get (C.find c "inner") in
  let outer = Option.get (C.find c "outer") in
  Alcotest.(check (list string)) "inner nests under outer" [ "outer" ]
    inner.T.path;
  Alcotest.(check (list string)) "outer is a root" [] outer.T.path;
  Alcotest.(check bool) "outer covers inner" true
    (outer.T.duration_ms >= inner.T.duration_ms)

let test_span_on_exception () =
  let c = C.create () in
  let sink = C.sink c in
  Alcotest.check_raises "exception propagates" Exit (fun () ->
      T.with_span sink "failing" (fun () -> raise Exit));
  let s = Option.get (C.find c "failing") in
  Alcotest.(check bool) "error attr recorded" true
    (List.mem_assoc "error" s.T.attrs);
  (* The stack must be unwound: the next span is a root again. *)
  T.with_span sink "after" (fun () -> ());
  let after = Option.get (C.find c "after") in
  Alcotest.(check (list string)) "stack unwound" [] after.T.path

let test_counters () =
  let c = C.create () in
  let sink = C.sink c in
  T.count sink "widgets" 2;
  T.count sink "widgets" 3;
  T.count sink "gadgets" 1;
  Alcotest.(check int) "accumulated" 5 (C.counter c "widgets");
  Alcotest.(check int) "separate counter" 1 (C.counter c "gadgets");
  Alcotest.(check int) "absent counter" 0 (C.counter c "nothing");
  Alcotest.(check (list (pair string int)))
    "sorted listing"
    [ "gadgets", 1; "widgets", 5 ]
    (C.counters c);
  C.reset c;
  Alcotest.(check int) "reset" 0 (C.counter c "widgets")

(* Regression (PR 5): now_ms used to read the wall clock, so a clock
   step between span start and finish produced negative durations. *)
let test_durations_never_negative () =
  (* The clock is monotonic: consecutive reads never go backwards. *)
  let a = T.now_ms () in
  let b = T.now_ms () in
  Alcotest.(check bool) "monotonic" true (b >= a);
  (* duration_since clamps at zero even against a fabricated future
     start (what a backwards wall-clock step used to produce). *)
  Alcotest.(check (float 0.0)) "clamped" 0.0
    (T.duration_since (T.now_ms () +. 1e9));
  Alcotest.(check bool) "positive interval measured" true
    (T.duration_since a >= 0.0);
  (* No span observed through a sink ever reports a negative duration. *)
  let c = C.create () in
  let sink = C.sink c in
  for i = 0 to 99 do
    T.with_span sink (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  List.iter
    (fun s ->
      if s.T.duration_ms < 0.0 then
        Alcotest.failf "negative span duration: %s %f" s.T.name s.T.duration_ms)
    (C.spans c)

let test_null_sink_is_inert () =
  Alcotest.(check bool) "null is disabled" false (T.enabled T.null);
  (* with_span on the null sink must still run the function. *)
  Alcotest.(check int) "pass-through" 7 (T.with_span T.null "x" (fun () -> 7))

let test_tree_rendering () =
  let c = C.create () in
  let sink = C.sink c in
  T.with_span sink "parent" (fun () ->
      T.with_span sink "child" (fun () -> ()));
  let tree = C.tree c in
  let lines = String.split_on_char '\n' tree in
  Alcotest.(check bool) "parent line first" true
    (match lines with
    | first :: _ -> String.starts_with ~prefix:"parent" first
    | [] -> false);
  Alcotest.(check bool) "child indented" true
    (List.exists (String.starts_with ~prefix:"  child") lines)

let test_to_json () =
  let c = C.create () in
  let sink = C.sink c in
  T.with_span sink {|na"me|} (fun () -> ());
  T.count sink "n" 3;
  let j = C.to_json c in
  Alcotest.(check bool) "quotes escaped" true
    (let needle = {|na\"me|} in
     let rec go i =
       i + String.length needle <= String.length j
       && (String.sub j i (String.length needle) = needle || go (i + 1))
     in
     go 0);
  Alcotest.(check bool) "counter serialized" true
    (let needle = {|"n":3|} in
     let rec go i =
       i + String.length needle <= String.length j
       && (String.sub j i (String.length needle) = needle || go (i + 1))
     in
     go 0)

(* Engine instrumentation: the spans emitted while preparing and running
   a query. *)

let pipeline_collector backend =
  let c = C.create () in
  let eng =
    Steno.Engine.create
      {
        Steno.Engine.default_config with
        backend;
        telemetry = C.sink c;
      }
  in
  let sq = Query.sum_int (ints [| 1; 2; 3 |] |> Query.select (fun x -> I.(x * x))) in
  let p = Steno.Engine.prepare_scalar eng sq in
  Alcotest.(check int) "query result" 14 (Steno.Prepared_scalar.run p);
  c

let child_names c =
  List.filter_map
    (fun s -> if s.T.path = [ "prepare" ] then Some s.T.name else None)
    (C.spans c)

let test_engine_spans_fused () =
  let c = pipeline_collector Steno.Fused in
  Alcotest.(check bool) "prepare span" true (C.find c "prepare" <> None);
  Alcotest.(check bool) "run span" true (C.find c "run" <> None);
  let kids = child_names c in
  List.iter
    (fun stage ->
      Alcotest.(check bool) (stage ^ " under prepare") true
        (List.mem stage kids))
    (* Fused never lowers to QUIL: it specializes and stages closures. *)
    [ "specialize"; "stage" ]

let test_engine_spans_native () =
  if not (Steno.native_available ()) then ()
  else begin
    let c = pipeline_collector Steno.Native in
    let kids = child_names c in
    List.iter
      (fun stage ->
        Alcotest.(check bool) (stage ^ " under prepare") true
          (List.mem stage kids))
      [ "specialize"; "canon"; "codegen"; "compile"; "dynlink"; "env-bind" ];
    Alcotest.(check int) "one cache miss" 1 (C.counter c "cache.miss");
    let prepare = Option.get (C.find c "prepare") in
    let compile = Option.get (C.find c "compile") in
    Alcotest.(check bool) "prepare covers compile" true
      (prepare.T.duration_ms >= compile.T.duration_ms)
  end

let test_fallback_counter () =
  let c = C.create () in
  let eng =
    Steno.Engine.create
      {
        Steno.Engine.default_config with
        backend = Steno.Native;
        fallback = true;
        telemetry = C.sink c;
      }
  in
  Dynload.disabled := true;
  Fun.protect ~finally:(fun () -> Dynload.disabled := false) @@ fun () ->
  let sq = Query.sum_int (ints [| 1; 2 |]) in
  Alcotest.(check int) "answers via fused" 3 (Steno.Engine.scalar eng sq);
  Alcotest.(check int) "fallback counted" 1 (C.counter c "engine.fallback");
  let fb = Option.get (C.find c "fallback") in
  Alcotest.(check bool) "reason attr" true
    (List.mem_assoc "reason" fb.T.attrs)

let () =
  Alcotest.run "telemetry"
    [
      ( "collector",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception" `Quick test_span_on_exception;
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "no negative durations" `Quick
            test_durations_never_negative;
          Alcotest.test_case "null sink" `Quick test_null_sink_is_inert;
          Alcotest.test_case "tree" `Quick test_tree_rendering;
          Alcotest.test_case "json" `Quick test_to_json;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fused spans" `Quick test_engine_spans_fused;
          Alcotest.test_case "native spans" `Quick test_engine_spans_native;
          Alcotest.test_case "fallback counter" `Quick test_fallback_counter;
        ] );
    ]
