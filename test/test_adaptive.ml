(* The cost-based adaptive phase end to end: statistics-driven predicate
   reordering (translation-validated, with an injected unsound reorder
   rejected), the empty-source and drift/stale-statistics regressions,
   cost-based backend choice, partition derivation, and a differential
   suite pinning adaptive execution to the Reference semantics. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

(* An expensive-looking, practically-always-true predicate the interval
   analysis cannot discharge (so [where-interval-true] keeps its hands
   off): an iterated hash compared against a bound one below the modulus
   range's top. *)
let hashy x =
  let h = ref I.(x * Expr.int 131 + Expr.int 7) in
  for _ = 1 to 3 do
    h := I.((!h * Expr.int 131 + Expr.int 7) mod Expr.int 1000003)
  done;
  I.(!h < Expr.int 1000002)

(* Selective and cheap: true on ~0.1% of values. *)
let rare x = I.(x mod Expr.int 997 = Expr.int 0)

let even x = I.(x mod Expr.int 2 = Expr.int 0)

let adaptive_engine ?(drift = 2.0) ?fused_below ?(profile = true)
    ?(backend = Steno.Fused) ?metrics () =
  let reg = match metrics with Some m -> m | None -> Metrics.create () in
  Steno.Engine.create
    Steno.Config.(
      default |> with_backend backend |> with_profile profile
      |> with_metrics reg
      |> with_adaptive ~drift ?fused_below)

let adaptive_count reg decision =
  Metrics.counter_value
    (Metrics.counter reg "steno_adaptive" ~labels:[ "decision", decision ])

let verify_count reg result =
  Metrics.counter_value
    (Metrics.counter reg "steno_verify" ~labels:[ "result", result ])

(* {2 Statistics-driven reordering} *)

(* Pessimal static order: the always-true predicate first.  The first
   profiled preparation observes per-conjunct selectivities (the split
   gives each conjunct its own probe point); the second preparation of
   the same plan reorders on them. *)
let test_reorder_from_observations () =
  let reg = Metrics.create () in
  let eng = adaptive_engine ~metrics:reg () in
  let q =
    ints (Array.init 500 (fun i -> i)) |> Query.where hashy |> Query.where rare
  in
  let expected = Reference.to_list q in
  let p1 = Steno.Engine.prepare eng q in
  Alcotest.(check (list int))
    "first prepare (no stats) runs correctly" expected
    (Array.to_list (Steno.Prepared.run p1));
  Alcotest.(check (list string))
    "no reorder without observations" []
    (List.filter (fun r -> r = "stats-where-reorder")
       (Steno.Prepared.rewrite_log p1));
  (* Second preparation: the store now knows hashy ~ 1.0, rare ~ 0.001. *)
  let p2 = Steno.Engine.prepare eng q in
  Alcotest.(check bool) "reorder fired" true
    (List.mem "stats-where-reorder" (Steno.Prepared.rewrite_log p2));
  (match Steno.Prepared.decisions p2 with
  | d :: _ ->
    Alcotest.(check bool)
      (Printf.sprintf "decision line (%s)" d)
      true
      (String.length d > 10 && String.sub d 0 10 = "reordered:")
  | [] -> Alcotest.fail "expected a reorder decision");
  Alcotest.(check (list int))
    "reordered plan computes the same rows" expected
    (Array.to_list (Steno.Prepared.run p2));
  Alcotest.(check bool) "reorder counted" true (adaptive_count reg "reorder" >= 1);
  Alcotest.(check bool) "validated" true (verify_count reg "accepted" >= 1);
  Alcotest.(check int) "nothing rejected" 0 (verify_count reg "rejected");
  (* The store's view, through the public API. *)
  let key =
    let fused, _ = Opt.query_ev q in
    Steno.Cost.plan_key ~optimize:true fused
  in
  let store = Steno.Engine.cost_store eng in
  (match
     Steno.Cost.selectivity store ~key
       ~digest:(Steno.Cost.pred_digest (Expr.lam "x" Ty.Int hashy))
   with
  | Some s -> Alcotest.(check bool) "hashy observed ~always true" true (s > 0.9)
  | None -> Alcotest.fail "no selectivity recorded for hashy");
  match
    Steno.Cost.selectivity store ~key
      ~digest:(Steno.Cost.pred_digest (Expr.lam "x" Ty.Int rare))
  with
  | Some s -> Alcotest.(check bool) "rare observed selective" true (s < 0.1)
  | None -> Alcotest.fail "no selectivity recorded for rare"

(* {2 An unsound reorder is rejected} *)

(* Swap two filters whose predicates call captured host functions — not
   provably commutative — with a forged selectivity fact.  The validator
   re-derives purity on the captured lambdas and must refuse; the engine
   falls back to the plan as written. *)
let swap_hook fired =
  {
    Opt.h =
      (fun (type a) (q : a Query.t) : (a Query.t * Opt.event) option ->
        match q with
        | Query.Where (Query.Where (q0, p1), p2) ->
          if !fired then None
          else begin
            fired := true;
            Some
              ( Query.Where (Query.Where (q0, p2), p1),
                {
                  Opt.ev_rule = "stats-where-reorder";
                  ev_facts = [ Check.Equiv.Stats_selectivity (p2, p1, 0.0, 1.0) ];
                } )
          end
        | _ -> None);
  }

let impure_query () =
  let host_even =
    Expr.capture (Ty.Func (Ty.Int, Ty.Bool)) (fun x -> x mod 2 = 0)
  in
  let host_small =
    Expr.capture (Ty.Func (Ty.Int, Ty.Bool)) (fun x -> x < 8)
  in
  ints [| 5; 2; 8; 2; 11; 14; 3; 8; 0; 7 |]
  |> Query.where (fun x -> Expr.Apply (host_even, x))
  |> Query.where (fun x -> Expr.Apply (host_small, x))

let test_unsound_reorder_rejected () =
  let q = impure_query () in
  let expected = Reference.to_list q in
  Opt.set_test_hook (Some (swap_hook (ref false)));
  Fun.protect
    ~finally:(fun () -> Opt.set_test_hook None)
    (fun () ->
      let reg = Metrics.create () in
      let eng =
        Steno.Engine.(
          create { default_config with backend = Steno.Fused; metrics = reg })
      in
      let p = Steno.Engine.prepare eng q in
      Alcotest.(check (list int))
        "fallback runs the plan as written" expected
        (Array.to_list (Steno.Prepared.run p));
      Alcotest.(check (list string))
        "no rules survive the rejection" [] (Steno.Prepared.rewrite_log p);
      Alcotest.(check int) "rejected counted" 1 (verify_count reg "rejected");
      Alcotest.(check bool) "SC012 diagnostic recorded" true
        (List.exists
           (fun d -> d.Check.d_code = "SC012")
           (Steno.Prepared.diagnostics p)))

let test_unsound_reorder_strict_raises () =
  Opt.set_test_hook (Some (swap_hook (ref false)));
  Fun.protect
    ~finally:(fun () -> Opt.set_test_hook None)
    (fun () ->
      let eng =
        Steno.Engine.(
          create
            { default_config with backend = Steno.Fused; strict = true })
      in
      match Steno.Engine.try_prepare eng (impure_query ()) with
      | Error (Steno.Engine.Check_error _) -> ()
      | Error _ -> Alcotest.fail "wrong refusal"
      | Ok _ -> Alcotest.fail "strict engine accepted an unsound reorder")

(* {2 Empty-source regression} *)

(* A profiled empty-source run records zero rows everywhere: every
   selectivity read must come back [None] (not NaN), and re-preparation
   must neither reorder nor divide by the zero observations. *)
let test_empty_source_profiled () =
  let eng = adaptive_engine () in
  let q = ints [||] |> Query.where hashy |> Query.where rare in
  let p1 = Steno.Engine.prepare eng q in
  for _ = 1 to 3 do
    Alcotest.(check (list int)) "empty rows" [] (Array.to_list (Steno.Prepared.run p1))
  done;
  let key =
    let fused, _ = Opt.query_ev q in
    Steno.Cost.plan_key ~optimize:true fused
  in
  let store = Steno.Engine.cost_store eng in
  Alcotest.(check bool) "runs recorded" true (Steno.Cost.runs store ~key >= 3);
  Alcotest.(check (option (float 0.0))) "zero-row source averages to 0"
    (Some 0.0)
    (Steno.Cost.avg_source_rows store ~key);
  Alcotest.(check (option (float 0.0))) "untested predicate has no selectivity"
    None
    (Steno.Cost.selectivity store ~key
       ~digest:(Steno.Cost.pred_digest (Expr.lam "x" Ty.Int rare)));
  let p2 = Steno.Engine.prepare eng q in
  Alcotest.(check (list string)) "no reorder from zero observations" []
    (List.filter (fun r -> r = "stats-where-reorder")
       (Steno.Prepared.rewrite_log p2));
  Alcotest.(check (list int)) "still empty" []
    (Array.to_list (Steno.Prepared.run p2))

(* {2 Drift retires stale statistics} *)

let test_drift_retires_stale_stats () =
  let reg = Metrics.create () in
  (* Seeding engine: drift effectively off (threshold 2.0). *)
  let eng = adaptive_engine ~metrics:reg () in
  let data = Array.init 100 (fun i -> if i < 90 then 1000 + (2 * i) else 1001) in
  let p_even = even in
  let p_small x = I.(x < Expr.int 100) in
  let q = ints data |> Query.where p_even |> Query.where p_small in
  let key =
    let fused, _ = Opt.query_ev q in
    Steno.Cost.plan_key ~optimize:true fused
  in
  let store = Steno.Engine.cost_store eng in
  let digest_of p = Steno.Cost.pred_digest (Expr.lam "x" Ty.Int p) in
  (* Phase A: even ~ 0.9, small = 0.0. *)
  let pa = Steno.Engine.prepare eng q in
  for _ = 1 to 5 do
    ignore (Steno.Prepared.run pa)
  done;
  (match Steno.Cost.selectivity store ~key ~digest:(digest_of p_even) with
  | Some s -> Alcotest.(check bool) "phase A: even ~0.9" true (s > 0.8)
  | None -> Alcotest.fail "phase A recorded nothing");
  Alcotest.(check int) "no retirement yet" 0 (Steno.Cost.epoch store ~key);
  (* A drift-sensitive session on the same engine (same store). *)
  let sess =
    Steno.Session.create eng ~client_id:"drift"
      ~config:(fun c -> Steno.Config.with_adaptive ~drift:0.3 c)
  in
  let pb = Steno.Session.prepare sess q in
  (* The phase-A statistics reorder [small] (0.0) above [even] (0.9). *)
  Alcotest.(check bool) "stale stats drove a reorder" true
    (List.mem "stats-where-reorder" (Steno.Prepared.rewrite_log pb));
  (* Flip the distribution in place: now everything is small and mostly
     odd (even 0.1, small 1.0 — both far from the assumptions). *)
  Array.iteri
    (fun i _ ->
      data.(i) <-
        (if i < 90 then (2 * (i mod 45)) + 1 else 2 * (i mod 45)))
    data;
  ignore (Steno.Prepared.run pb);
  (* The drifted run retires the stale entry and seeds the new epoch
     with only post-flip observations — never an average of the two
     distributions (5 stale runs of 0.9 averaged in would leave ~0.77). *)
  Alcotest.(check int) "entry retired once" 1 (Steno.Cost.epoch store ~key);
  Alcotest.(check bool) "drift counted" true (adaptive_count reg "drift" >= 1);
  (match Steno.Cost.selectivity store ~key ~digest:(digest_of p_even) with
  | Some s ->
    Alcotest.(check bool)
      (Printf.sprintf "post-swap selectivity only (%.2f)" s)
      true (s < 0.3)
  | None -> Alcotest.fail "post-drift seed missing");
  (* The background re-preparation lands eventually. *)
  let deadline = Unix.gettimeofday () +. 30.0 in
  while
    adaptive_count reg "reprepare-ok" + adaptive_count reg "reprepare-failed"
      = 0
    && Unix.gettimeofday () < deadline
  do
    Unix.sleepf 0.01
  done;
  Alcotest.(check int) "re-preparation succeeded" 1
    (adaptive_count reg "reprepare-ok");
  (* The swapped-in plan keeps computing the right rows. *)
  Alcotest.(check (list int)) "post-swap rows" (Reference.to_list q)
    (Array.to_list (Steno.Prepared.run pb));
  (* A fresh preparation consults only the fresh epoch: even (0.1) is
     already ahead of small (1.0) in written order, so nothing moves. *)
  let pc = Steno.Session.prepare sess q in
  Alcotest.(check (list string)) "no reorder from fresh stats" []
    (List.filter (fun r -> r = "stats-where-reorder")
       (Steno.Prepared.rewrite_log pc))

(* {2 Cost-based backend choice} *)

let test_backend_choice () =
  let reg = Metrics.create () in
  let eng =
    adaptive_engine ~metrics:reg ~profile:false ~backend:Steno.Native ()
  in
  (* Tiny captured array: the flow prior alone keeps it off Native —
     no compiler needed, so this branch runs on every host. *)
  let small = ints (Array.init 10 (fun i -> i)) |> Query.where even in
  let p = Steno.Engine.prepare eng small in
  Alcotest.(check bool) "tiny input stays fused" true
    (Steno.Prepared.backend_used p = Steno.Fused);
  Alcotest.(check (option (of_pp Fmt.nop))) "not a fallback" None
    ((Steno.Prepared.compile_info p).Steno.fallback);
  Alcotest.(check (list string)) "decision surfaced"
    [ "backend: fused (est. 10 rows)" ]
    (Steno.Prepared.decisions p);
  Alcotest.(check int) "counted" 1 (adaptive_count reg "backend-fused");
  (* A large range keeps the engine-level Native dispatch (whatever
     fallback then does about a missing compiler). *)
  let large = Query.range ~start:0 ~count:100_000 |> Query.where even in
  let p2 = Steno.Engine.prepare eng large in
  Alcotest.(check (list string)) "no decision on a large input" []
    (Steno.Prepared.decisions p2);
  (* An explicit per-call backend always wins over the heuristic. *)
  let p3 = Steno.Engine.prepare ~backend:Steno.Linq eng small in
  Alcotest.(check bool) "explicit backend wins" true
    (Steno.Prepared.backend_used p3 = Steno.Linq);
  Alcotest.(check (list string)) "no decision either" []
    (Steno.Prepared.decisions p3)

(* {2 Partition derivation} *)

let test_partitions_for_rows () =
  let pf = Steno.Cost.partitions_for_rows in
  Alcotest.(check int) "zero rows" 1 (pf ~workers:8 0);
  Alcotest.(check int) "negative clamps" 1 (pf ~workers:8 (-5));
  Alcotest.(check int) "tiny input: one chunk" 1 (pf ~workers:8 100);
  Alcotest.(check int) "one chunk per 4096 rows" 3 (pf ~workers:8 (3 * 4096));
  Alcotest.(check int) "capped at workers" 8 (pf ~workers:8 10_000_000);
  Alcotest.(check int) "workers floor" 1 (pf ~workers:0 10_000);
  (* Par integration: an adaptive engine's auto helpers stay correct on
     inputs small enough to collapse to one partition. *)
  let eng = adaptive_engine ~profile:false () in
  let sq = ints (Array.init 37 (fun i -> i)) |> Query.sum_int in
  Alcotest.(check int) "scalar_auto under adaptive" (Reference.scalar sq)
    (Par.scalar_auto ~engine:eng ~workers:4 sq)

(* {2 Differential: adaptive on/off vs Reference} *)

(* A tiny deterministic generator (no global RNG: runs must be
   reproducible) over pipelines heavy on stacked filters, the shape the
   adaptive pass rewrites. *)
let gen_state = ref 0x2545F49

let rand n =
  gen_state := ((!gen_state * 1103515245) + 12345) land 0x3FFFFFFF;
  !gen_state mod n

let gen_pred () =
  match rand 5 with
  | 0 -> even
  | 1 -> rare
  | 2 -> hashy
  | 3 -> fun x -> I.(x < Expr.int (rand 30))
  | _ ->
    let m = 2 + rand 5 in
    fun x -> I.(x mod Expr.int m = Expr.int 0)

let gen_op () =
  match rand 8 with
  | 0 | 1 | 2 ->
    let p = gen_pred () in
    fun q -> Query.where p q
  | 3 ->
    let k = rand 7 in
    fun q -> Query.select (fun x -> I.(x + Expr.int k)) q
  | 4 ->
    let n = rand 12 in
    fun q -> Query.take n q
  | 5 ->
    let n = rand 5 in
    fun q -> Query.skip n q
  | 6 -> fun q -> Query.distinct q
  | _ -> fun q -> Query.rev q

let gen_pipeline () =
  let src = ints (Array.init (rand 41) (fun i -> (i * 7) mod 53)) in
  let n_ops = 1 + rand 5 in
  let rec build q n = if n = 0 then q else build (gen_op () q) (n - 1) in
  build src n_ops

let test_differential () =
  let mk backend = adaptive_engine ~backend (), adaptive_engine ~backend ~profile:false () in
  let linq_on, linq_off = mk Steno.Linq in
  let fused_on, fused_off = mk Steno.Fused in
  let native =
    if Steno.native_available () then Some (mk Steno.Native) else None
  in
  for i = 1 to 200 do
    let q = gen_pipeline () in
    let expected = Reference.to_list q in
    let check_engine label eng =
      (* Prepare twice and run twice: the second preparation consumes
         whatever the first one's profiled runs recorded, so reorders
         actually engage mid-suite. *)
      let p1 = Steno.Engine.prepare eng q in
      let r1 = Array.to_list (Steno.Prepared.run p1) in
      ignore (Steno.Prepared.run p1);
      let p2 = Steno.Engine.prepare eng q in
      let r2 = Array.to_list (Steno.Prepared.run p2) in
      if r1 <> expected || r2 <> expected then
        Alcotest.failf "pipeline %d diverged on %s" i label
    in
    check_engine "linq+adaptive" linq_on;
    check_engine "linq" linq_off;
    check_engine "fused+adaptive" fused_on;
    check_engine "fused" fused_off;
    match native with
    | Some (on, off) when i mod 8 = 0 ->
      check_engine "native+adaptive" on;
      check_engine "native" off
    | _ -> ()
  done

let () =
  Alcotest.run "adaptive"
    [
      ( "reorder",
        [
          Alcotest.test_case "observations drive a reorder" `Quick
            test_reorder_from_observations;
          Alcotest.test_case "unsound reorder rejected" `Quick
            test_unsound_reorder_rejected;
          Alcotest.test_case "strict refuses unsound reorder" `Quick
            test_unsound_reorder_strict_raises;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "empty source profiled" `Quick
            test_empty_source_profiled;
          Alcotest.test_case "drift retires stale stats" `Quick
            test_drift_retires_stale_stats;
        ] );
      ( "decisions",
        [
          Alcotest.test_case "backend choice" `Quick test_backend_choice;
          Alcotest.test_case "partitions" `Quick test_partitions_for_rows;
        ] );
      ( "differential",
        [ Alcotest.test_case "200 pipelines" `Slow test_differential ] );
    ]
