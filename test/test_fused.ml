(* The closure-fusion backend in isolation: folder laws, staging reuse,
   early-exit behaviour, and agreement with the reference on targeted
   shapes (broad agreement is covered by test_backends). *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let test_fold_is_in_order () =
  let q = ints [| 3; 1; 2 |] |> Query.select (fun x -> I.(x * Expr.int 10)) in
  let folder = Fused.stage q Expr.Open.empty in
  let order = folder.Fused.fold (fun acc x -> x :: acc) [] in
  Alcotest.(check (list int)) "source order" [ 20; 10; 30 ] order

let test_materialize () =
  let q = ints [| 5; 6; 7 |] in
  Alcotest.(check (array int)) "materialize preserves order" [| 5; 6; 7 |]
    (Fused.materialize (Fused.stage q Expr.Open.empty));
  Alcotest.(check (array int)) "empty" [||]
    (Fused.materialize (Fused.stage (ints [||]) Expr.Open.empty))

let test_staged_folder_reusable () =
  let q = ints [| 1; 2; 3 |] |> Query.take 2 in
  let folder = Fused.stage q Expr.Open.empty in
  let sum () = folder.Fused.fold ( + ) 0 in
  Alcotest.(check int) "first fold" 3 (sum ());
  (* Stateful operators (take's counter) must reset per fold. *)
  Alcotest.(check int) "second fold identical" 3 (sum ())

let test_early_exit_stops_pulling () =
  (* Fold over take n must call the consumer exactly n times. *)
  let pulled = ref 0 in
  let q = ints (Array.init 1000 (fun i -> i)) |> Query.take 7 in
  let folder = Fused.stage q Expr.Open.empty in
  let consumed = folder.Fused.fold (fun n _ -> incr pulled; n + 1) 0 in
  Alcotest.(check int) "consumer calls" 7 consumed;
  Alcotest.(check int) "no overdraw" 7 !pulled

let test_first_and_exists_short_circuit () =
  (* first/any/exists stop at the witness: observable through a counting
     captured function. *)
  let calls = ref 0 in
  let spy =
    Expr.capture (Ty.Func (Ty.Int, Ty.Int)) (fun x ->
        incr calls;
        x)
  in
  let q =
    ints (Array.init 100 (fun i -> i))
    |> Query.select (fun x -> Expr.Apply (spy, x))
  in
  calls := 0;
  Alcotest.(check int) "first" 0 (Fused.run_sq (Query.first q));
  Alcotest.(check int) "first pulled once" 1 !calls;
  calls := 0;
  Alcotest.(check bool) "exists" true
    (Fused.run_sq (Query.exists (fun x -> I.(x = Expr.int 5)) q));
  Alcotest.(check int) "exists pulled six" 6 !calls;
  calls := 0;
  Alcotest.(check bool) "for_all stops at counterexample" false
    (Fused.run_sq (Query.for_all (fun x -> I.(x < Expr.int 3)) q));
  Alcotest.(check int) "for_all pulled four" 4 !calls

let test_nested_rebinds_outer () =
  let q =
    ints [| 1; 2 |]
    |> Query.select_many (fun x ->
           Query.range ~start:0 ~count:2 |> Query.select (fun y -> I.((x * Expr.int 10) + y)))
  in
  Alcotest.(check (list int)) "outer var visible inside"
    [ 10; 11; 20; 21 ] (Fused.to_list q)

let test_stop_does_not_leak () =
  (* The internal Stop exception must never escape a fold. *)
  let q = ints (Array.init 50 (fun i -> i)) |> Query.take 3 |> Query.rev in
  Alcotest.(check (list int)) "take then rev" [ 2; 1; 0 ] (Fused.to_list q);
  let q2 =
    ints [| 1; 2; 3; 4 |]
    |> Query.take_while (fun x -> I.(x < Expr.int 3))
    |> Query.order_by (fun x -> I.(Expr.int 0 - x))
  in
  Alcotest.(check (list int)) "take_while then sort" [ 2; 1 ] (Fused.to_list q2)

let () =
  Alcotest.run "fused"
    [
      ( "folder",
        [
          Alcotest.test_case "order" `Quick test_fold_is_in_order;
          Alcotest.test_case "materialize" `Quick test_materialize;
          Alcotest.test_case "reusable" `Quick test_staged_folder_reusable;
        ] );
      ( "early exit",
        [
          Alcotest.test_case "take" `Quick test_early_exit_stops_pulling;
          Alcotest.test_case "first/exists/for_all" `Quick
            test_first_and_exists_short_circuit;
          Alcotest.test_case "stop containment" `Quick test_stop_does_not_leak;
        ] );
      ( "nesting",
        [ Alcotest.test_case "outer binding" `Quick test_nested_rebinds_outer ] );
    ]
