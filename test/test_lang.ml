(* The textual front end: lexer, parser, elaborator, and end-to-end runs
   compared against hand-built combinator queries. *)

module I = Expr.Infix

let ints_in name xs : Elab.inputs = [ name, Elab.Input (Ty.Int, xs) ]

let xs = [| 5; 2; 8; 1; 9; 4; 7; 2 |]

let inputs : Elab.inputs =
  [
    "xs", Elab.Input (Ty.Int, xs);
    "fs", Elab.Input (Ty.Float, [| 1.5; -0.5; 2.25; 0.0 |]);
    ( "pairs",
      Elab.Input
        (Ty.Pair (Ty.Int, Ty.Float), [| 1, 10.0; 2, 20.0; 1, 30.0 |]) );
  ]

(* Lexer *)

let test_lexer () =
  let toks = Lexer.tokenize "from x in xs where x % 2 = 0 select x * x" in
  Alcotest.(check int) "token count incl. EOF" 15 (List.length toks);
  let kinds = List.map fst (Lexer.tokenize "1 2.5 1e3 \"hi\" <= <> && (,)") in
  Alcotest.(check bool) "literals and operators" true
    (kinds
    = [
        Lexer.INT 1; Lexer.FLOAT 2.5; Lexer.FLOAT 1000.0; Lexer.STRING "hi";
        Lexer.OP "<="; Lexer.OP "<>"; Lexer.OP "&&"; Lexer.LPAREN;
        Lexer.COMMA; Lexer.RPAREN; Lexer.EOF;
      ]);
  Alcotest.(check bool) "lex error raised" true
    (match Lexer.tokenize "a # b" with
    | exception Lexer.Lex_error (_, 2) -> true
    | _ -> false)

(* Parser *)

let test_parser_roundtrip () =
  let check src expected =
    let prog = Lang.parse src in
    Alcotest.(check string) src expected
      (Format.asprintf "%a" Surface.pp_program prog)
  in
  check "from x in xs select x" "from x in xs select x";
  check "from x in xs where x % 2 = 0 select x * x"
    "from x in xs where ((x % 2) = 0) select (x * x)";
  check "sum(from x in xs select x)" "sum(from x in xs select x)";
  check "from x in xs from y in range(0, x) select x + y"
    "from x in xs from y in range(0, x) select (x + y)";
  check "from x in xs orderby x desc take 3 select x"
    "from x in xs orderby x desc take 3 select x";
  check "from x in xs group x by x % 3" "from x in xs group x by (x % 3)";
  check "from g in (from x in xs group x by x % 3) select (fst g, count g)"
    "from g in (from x in xs group x by (x % 3)) select ((fst g), (count g))"

let test_parser_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3 = 7 && true" in
  Alcotest.(check string) "precedence" "(((1 + (2 * 3)) = 7) && true)"
    (Format.asprintf "%a" Surface.pp_expr e)

let test_parser_errors () =
  let fails src =
    match Lang.parse src with
    | exception Lang.Error (_, _) -> ()
    | _ -> Alcotest.failf "expected parse error for %S" src
  in
  fails "from x xs select x";
  fails "from x in xs";
  fails "from x in xs select";
  fails "from x in xs select x extra";
  fails "sum(from x in xs select x";
  fails "from in xs select 1"

(* Elaboration *)

let test_type_errors () =
  let fails src =
    match Lang.run ~inputs src with
    | exception Lang.Error (_, _) -> ()
    | _ -> Alcotest.failf "expected type error for %S" src
  in
  fails "from x in nope select x";
  fails "from x in xs select x +";
  fails "from x in xs where x select x";
  fails "from x in xs select x +. 1";
  fails "from x in xs where x = 1.5 select x";
  fails "from x in fs select x % 2";
  fails "from x in xs select fst x";
  fails "sum(from p in pairs select p)";
  fails "avg(from x in xs select x)";
  fails "from x in xs select unknown_aggregate(from y in xs select y) + x"

(* End-to-end: textual queries agree with combinator queries. *)

let run_ints src ins : int list =
  match Lang.run ~inputs:ins src with
  | Lang.Res_collection (Ty.Int, arr) -> Array.to_list arr
  | _ -> Alcotest.fail "expected an int collection"

let test_run_basic () =
  Alcotest.(check (list int)) "where/select" [ 4; 64; 16; 4 ]
    (run_ints "from x in xs where x % 2 = 0 select x * x" inputs);
  Alcotest.(check (list int)) "orderby desc take" [ 9; 8; 7 ]
    (run_ints "from x in xs orderby x desc take 3 select x" inputs);
  Alcotest.(check (list int)) "distinct" [ 5; 2; 8; 1; 9; 4; 7 ]
    (run_ints "from x in xs distinct select x" inputs);
  match Lang.run ~inputs "sum(from x in xs select x)" with
  | Lang.Res_scalar (Ty.Int, v) ->
    Alcotest.(check int) "sum" (Array.fold_left ( + ) 0 xs) v
  | _ -> Alcotest.fail "expected int scalar"

let test_run_nested () =
  (* Multiple generators (SelectMany over pairs). *)
  Alcotest.(check (list int)) "two generators"
    [ 10; 20; 21; 30; 31; 32 ]
    (run_ints "from x in ys from y in range(0, x) select x * 10 + y"
       (ints_in "ys" [| 1; 2; 3 |]));
  (* Scalar subquery inside select. *)
  Alcotest.(check (list int)) "subquery in select" [ 0; 30; 60 ]
    (run_ints "from x in ys select sum(from y in range(0, x) select y) * 10"
       (ints_in "ys" [| 1; 3; 4 |]));
  (* Scalar subquery inside where. *)
  Alcotest.(check (list int)) "subquery in where" [ 3; 4 ]
    (run_ints
       "from x in ys where count(from y in range(0, x) select y) > 2 select x"
       (ints_in "ys" [| 1; 3; 2; 4 |]))

let test_run_grouping () =
  match
    Lang.run ~inputs
      "from g in (from x in xs group x by x % 3) select (fst g, count g)"
  with
  | Lang.Res_collection (Ty.Pair (Ty.Int, Ty.Int), arr) ->
    let expected =
      Reference.to_list
        (Query.of_array Ty.Int xs
        |> Query.group_by (fun x -> I.(x mod Expr.int 3))
        |> Query.select (fun g ->
               Expr.Pair (Expr.Fst g, Expr.Array_length (Expr.Snd g))))
    in
    Alcotest.(check (list (pair int int))) "group counts" expected
      (Array.to_list arr)
  | _ -> Alcotest.fail "expected (int * int) collection"

let test_group_value_iteration () =
  (* Iterate a group's values with an array-expression source: the
     flattened groups contain every source element. *)
  let got =
    run_ints
      "from g in (from x in ys group x by x % 2) from v in snd g select v"
      (ints_in "ys" [| 5; 2; 8; 3 |])
  in
  Alcotest.(check (list int)) "flattened groups" [ 5; 3; 2; 8 ] got;
  (* Per-group aggregation over the values: sum of each group. *)
  let sums =
    run_ints
      "from g in (from x in ys group x by x % 2) select sum(from v in snd g \
       select v)"
      (ints_in "ys" [| 5; 2; 8; 3 |])
  in
  Alcotest.(check (list int)) "per-group sums" [ 8; 10 ] sums;
  (* That query is exactly the section 4.3 fold shape: the specialization
     pass must rewrite it to a GroupByAggregate sink. *)
  match
    Lang.elaborate ~inputs:(ints_in "ys" [| 5; 2; 8; 3 |])
      "from g in (from x in ys group x by x % 2) select sum(from v in snd g \
       select v)"
  with
  | Elab.Pgm_collection (Elab.Packed_query (_, q)) ->
    let quil = Steno.quil q in
    Alcotest.(check string) "specialized"
      "Src Sink:GroupByAggregate Trans Ret" quil
  | Elab.Pgm_scalar _ -> Alcotest.fail "expected collection"

let test_backends_agree_on_textual_queries () =
  let queries =
    [
      "from x in xs where x % 2 = 1 select x * 3";
      "from x in xs orderby x % 4 select x";
      "from x in xs skip 2 take 4 select x";
      "from x in xs select if x > 4 then x else 0 - x";
      "from x in xs from y in range(0, x % 3) select x + y";
      "from g in (from x in xs group x by x % 3) select (fst g, count g)";
    ]
  in
  let backends =
    if Steno.native_available () then [ Steno.Linq; Steno.Fused; Steno.Native ]
    else [ Steno.Linq; Steno.Fused ]
  in
  List.iter
    (fun src ->
      match Lang.elaborate ~inputs src with
      | Elab.Pgm_collection (Elab.Packed_query (ty, q)) ->
        let expected = Array.of_list (Reference.to_list q) in
        List.iter
          (fun b ->
            let got = Steno.to_array ~backend:b q in
            if Ty.compare_values (Ty.Array ty) got expected <> 0 then
              Alcotest.failf "backends disagree on %S" src)
          backends
      | Elab.Pgm_scalar _ -> Alcotest.fail "expected collection")
    queries

(* Property: pretty-printing a parsed program re-parses to the same
   pretty-printed form (fixpoint after one round). *)
let prop_pp_parse_roundtrip =
  let gen_expr_src =
    QCheck.Gen.(
      let var = oneofl [ "x"; "y" ] in
      sized @@ fix (fun self n ->
          if n <= 0 then
            oneof [ map string_of_int (int_bound 50); var ]
          else
            oneof
              [
                map string_of_int (int_bound 50);
                var;
                map2 (Printf.sprintf "%s + %s") (self (n / 2)) (self (n / 2));
                map2 (Printf.sprintf "%s * %s") (self (n / 2)) (self (n / 2));
                map2 (Printf.sprintf "%s %% %s") (self (n / 2))
                  (map string_of_int (int_range 1 9));
              ]))
  in
  let gen_src =
    QCheck.Gen.(
      gen_expr_src >>= fun cond_l ->
      gen_expr_src >>= fun cond_r ->
      gen_expr_src >>= fun body ->
      oneofl [ `Plain; `Where; `Take; `Order ] >|= fun clause ->
      let clause_s =
        match clause with
        | `Plain -> ""
        | `Where -> Printf.sprintf " where %s = %s" cond_l cond_r
        | `Take -> " take 3"
        | `Order -> Printf.sprintf " orderby %s desc" body
      in
      Printf.sprintf "from x in xs%s select %s" clause_s body)
  in
  QCheck.Test.make ~name:"pp/parse fixpoint" ~count:100
    (QCheck.make ~print:(fun s -> s) gen_src)
    (fun src ->
      match Lang.parse src with
      | prog ->
        let printed = Format.asprintf "%a" Surface.pp_program prog in
        let printed2 =
          Format.asprintf "%a" Surface.pp_program (Lang.parse printed)
        in
        String.equal printed printed2
      | exception Lang.Error (_, _) -> QCheck.assume_fail ())

let test_explain_mentions_quil () =
  let s = Lang.explain ~inputs "sum(from x in xs where x > 2 select x * x)" in
  Alcotest.(check bool) "has QUIL line" true
    (String.length s > 10 && String.sub s 0 5 = "QUIL:")

let () =
  Alcotest.run "lang"
    [
      ("lexer", [ Alcotest.test_case "tokens" `Quick test_lexer ]);
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parser_roundtrip;
          Alcotest.test_case "precedence" `Quick test_parser_precedence;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "elaboration",
        [ Alcotest.test_case "type errors" `Quick test_type_errors ] );
      ( "run",
        [
          Alcotest.test_case "basic" `Quick test_run_basic;
          Alcotest.test_case "nested" `Quick test_run_nested;
          Alcotest.test_case "grouping" `Quick test_run_grouping;
          Alcotest.test_case "group value iteration" `Quick
            test_group_value_iteration;
          Alcotest.test_case "backends agree" `Quick
            test_backends_agree_on_textual_queries;
          Alcotest.test_case "explain" `Quick test_explain_mentions_quil;
          QCheck_alcotest.to_alcotest prop_pp_parse_roundtrip;
        ] );
    ]
