(* The algebraic optimizer: per-rule unit tests on the rewrite log, a
   differential suite (every backend, optimization on and off, against
   the Reference semantics), and property tests for idempotence and
   operator-count monotonicity. *)

module I = Expr.Infix

let ints xs = Query.of_array Ty.Int xs

let backends =
  if Steno.native_available () then [ Steno.Linq; Steno.Fused; Steno.Native ]
  else [ Steno.Linq; Steno.Fused ]

let engine ~optimize backend =
  Steno.Engine.(create { default_config with backend; optimize })

(* Every backend, with and without the optimizer, must agree with the
   Reference evaluation of the query as written. *)
let check_differential name (q : int Query.t) =
  let expected = Reference.to_list q in
  List.iter
    (fun b ->
      List.iter
        (fun optimize ->
          let got = Steno.Engine.to_list (engine ~optimize b) q in
          if got <> expected then
            Alcotest.failf "%s/%s/optimize=%b: got [%s], want [%s]" name
              (Steno.backend_name b) optimize
              (String.concat ";" (List.map string_of_int got))
              (String.concat ";" (List.map string_of_int expected)))
        [ true; false ])
    backends

(* One rule check: the expected log, operator count not increased, and
   the differential guarantee. *)
let check_rule name q expected_log =
  let q', log = Opt.query q in
  Alcotest.(check (list string)) (name ^ " log") expected_log log;
  if Query.operator_count q' > Query.operator_count q then
    Alcotest.failf "%s: operator count grew %d -> %d" name
      (Query.operator_count q) (Query.operator_count q');
  check_differential name q

let data = [| 5; 2; 8; 2; 11; 14; 3; 8; 0; 7; 12; 9 |]

let even x = I.(x mod Expr.int 2 = Expr.int 0)

let test_where_fuse () =
  check_rule "two wheres"
    (ints data |> Query.where even |> Query.where (fun x -> I.(x < Expr.int 10)))
    [ "where-fuse" ];
  check_rule "three wheres"
    (ints data |> Query.where even
    |> Query.where (fun x -> I.(x < Expr.int 10))
    |> Query.where (fun x -> I.(x > Expr.int 1)))
    [ "where-fuse"; "where-fuse" ]

let test_select_fuse () =
  check_rule "two selects"
    (ints data
    |> Query.select (fun x -> I.(x * x))
    |> Query.select (fun x -> I.(x + Expr.int 1)))
    [ "select-fuse" ];
  (* The composed selector must evaluate the first stage once even when
     the second uses its parameter twice ([Let] binding, not textual
     substitution): check via the value semantics. *)
  check_rule "reused parameter"
    (ints data
    |> Query.select (fun x -> I.(x + Expr.int 3))
    |> Query.select (fun y -> I.(y * y)))
    [ "select-fuse" ]

let test_take_take () =
  check_rule "take take" (ints data |> Query.take 7 |> Query.take 4)
    [ "take-take" ];
  check_rule "take take larger" (ints data |> Query.take 3 |> Query.take 9)
    [ "take-take" ]

let test_skip_skip () =
  check_rule "skip skip" (ints data |> Query.skip 2 |> Query.skip 3)
    [ "skip-skip" ];
  check_rule "skip zero" (ints data |> Query.skip 0) [ "skip-zero" ]

let test_take_zero () =
  (* take 0 collapses to the empty source; the downstream select then
     collapses too. *)
  check_rule "take zero"
    (ints data |> Query.take 0 |> Query.select (fun x -> I.(x * x)))
    [ "take-zero"; "empty-collapse" ]

let test_where_const () =
  check_rule "constant true" (ints data |> Query.where (fun _ -> Expr.bool true))
    [ "where-const-true" ];
  check_rule "constant false"
    (ints data |> Query.where (fun _ -> Expr.bool false))
    [ "where-const-false" ];
  (* A predicate that only folds to a constant: 1 + 1 = 2. *)
  check_rule "foldable predicate"
    (ints data
    |> Query.where (fun _ -> I.(Expr.int 1 + Expr.int 1 = Expr.int 2)))
    [ "where-const-true" ]

let test_while_const () =
  check_rule "take_while true"
    (ints data |> Query.take_while (fun _ -> Expr.bool true))
    [ "take-while-const" ];
  check_rule "take_while false"
    (ints data |> Query.take_while (fun _ -> Expr.bool false))
    [ "take-while-const" ];
  check_rule "skip_while false"
    (ints data |> Query.skip_while (fun _ -> Expr.bool false))
    [ "skip-while-const" ];
  check_rule "skip_while true"
    (ints data |> Query.skip_while (fun _ -> Expr.bool true))
    [ "skip-while-const" ]

let test_distinct_distinct () =
  check_rule "distinct distinct"
    (ints data |> Query.distinct |> Query.distinct)
    [ "distinct-distinct" ]

(* Property-driven rules: justified by the Check_flow analysis rather
   than by local shape, and each validated against its law by the
   engine's translation validator on every optimized prepare. *)

let test_distinct_on_distinct_free () =
  (* Range yields each value once, so Distinct over it is the identity. *)
  check_rule "distinct over range"
    (Query.range ~start:3 ~count:9 |> Query.distinct)
    [ "distinct-on-distinct-free" ];
  (* Distinctness survives a filter (subsequence), so the rule still
     fires through an interposed Where. *)
  check_rule "distinct over filtered range"
    (Query.range ~start:0 ~count:20 |> Query.where even |> Query.distinct)
    [ "distinct-on-distinct-free" ];
  (* A Select can introduce duplicates: no rewrite. *)
  check_rule "distinct after select kept"
    (Query.range ~start:0 ~count:9
    |> Query.select (fun x -> I.(x mod Expr.int 3))
    |> Query.distinct)
    []

let test_orderby_on_sorted () =
  (* Range is ascending by identity. *)
  check_rule "order-by over sorted range"
    (Query.range ~start:0 ~count:10 |> Query.order_by (fun x -> x))
    [ "orderby-on-sorted" ];
  (* Re-sorting by an alpha-equivalent key in the same direction. *)
  check_rule "re-sort same key"
    (ints data
    |> Query.order_by (fun x -> I.(x mod Expr.int 5))
    |> Query.order_by (fun y -> I.(y mod Expr.int 5)))
    [ "orderby-on-sorted" ];
  (* Opposite direction, different key: both kept. *)
  check_rule "descending over ascending kept"
    (Query.range ~start:0 ~count:10
    |> Query.order_by ~order:Query.Descending (fun x -> x))
    [];
  check_rule "different key kept"
    (ints data
    |> Query.order_by (fun x -> x)
    |> Query.order_by (fun x -> I.(x mod Expr.int 5)))
    []

let test_ast_rev_rev () =
  check_rule "rev rev at the AST level"
    (ints data |> Query.rev |> Query.rev)
    [ "rev-rev" ];
  check_rule "single rev kept" (ints data |> Query.rev) []

let test_nonempty_any_true () =
  let sq = Query.range ~start:0 ~count:5 |> Query.any in
  let sq', log = Opt.scalar sq in
  Alcotest.(check (list string)) "log" [ "nonempty-any-true" ] log;
  Alcotest.(check bool) "rewrite preserves the answer"
    (Reference.scalar sq) (Reference.scalar sq');
  List.iter
    (fun b ->
      List.iter
        (fun optimize ->
          Alcotest.(check bool)
            (Printf.sprintf "any on %s" (Steno.backend_name b))
            true
            (Steno.Engine.scalar (engine ~optimize b) sq))
        [ true; false ])
    backends;
  (* Unprovably non-empty input: left alone. *)
  let _, log2 = Opt.scalar (ints data |> Query.where even |> Query.any) in
  Alcotest.(check (list string)) "unprovable left alone" [] log2;
  (* Non-empty but impure prefix: the deleted pipeline would also delete
     its host-function calls, so the rule must not fire. *)
  let host_id = Expr.capture (Ty.Func (Ty.Int, Ty.Int)) (fun x -> x) in
  let _, log3 =
    Opt.scalar
      (Query.range ~start:0 ~count:5
      |> Query.select (fun x -> Expr.Apply (host_id, x))
      |> Query.any)
  in
  Alcotest.(check (list string)) "impure prefix left alone" [] log3

(* Every rule the optimizer can fire is exercised by some plan in this
   battery — a new rule without a trigger here fails the test, keeping
   [Opt.rule_names], the law table and the suite in sync. *)
let test_rule_coverage () =
  let fired = Hashtbl.create 32 in
  let note names = List.iter (fun r -> Hashtbl.replace fired r ()) names in
  let runq q = note (snd (Opt.query q)) in
  let runsq sq = note (snd (Opt.scalar sq)) in
  let runc q = note (snd (Opt.chain (Canon.of_query q))) in
  runq (ints data |> Query.where even |> Query.where even);
  runq
    (ints data
    |> Query.select (fun x -> I.(x * x))
    |> Query.select (fun x -> I.(x + Expr.int 1)));
  runq (ints data |> Query.take 7 |> Query.take 4);
  runq (ints data |> Query.skip 2 |> Query.skip 3);
  runq (ints data |> Query.skip 0);
  runq (ints data |> Query.take 0);
  runq (ints data |> Query.where (fun _ -> Expr.bool true));
  runq (ints data |> Query.where (fun _ -> Expr.bool false));
  runq
    (ints data |> Query.where (fun x -> I.(x mod Expr.int 10 < Expr.int 10)));
  runq
    (ints data |> Query.where (fun x -> I.(x mod Expr.int 10 > Expr.int 20)));
  runq
    (Query.Take
       ( ints data,
         Expr.Prim2 (Prim.Min_int, Expr.capture Ty.Int 7, Expr.int 0) ));
  runq (ints data |> Query.take_while (fun _ -> Expr.bool true));
  runq (ints data |> Query.skip_while (fun _ -> Expr.bool false));
  runq (ints data |> Query.distinct |> Query.distinct);
  runq (Query.range ~start:0 ~count:9 |> Query.distinct);
  runq (Query.range ~start:0 ~count:9 |> Query.order_by (fun x -> x));
  runq (ints data |> Query.rev |> Query.rev);
  runq (ints [||] |> Query.select (fun x -> I.(x * x)));
  runsq (Query.range ~start:0 ~count:5 |> Query.any);
  runc (ints data |> Query.rev |> Query.materialize |> Query.rev);
  (* [stats-where-reorder] only fires from the adaptive entry point: fuse
     two filters first, then hand the fused plan an estimator that rates
     the second conjunct more selective. *)
  let fused, _ =
    Opt.query_ev
      (ints data |> Query.where even
      |> Query.where (fun x -> I.(x < Expr.int 10)))
  in
  let calls = ref 0 in
  let est =
    { Opt.est = (fun _ -> incr calls; if !calls = 1 then 0.9 else 0.1) }
  in
  note
    (List.map
       (fun (e : Opt.event) -> e.Opt.ev_rule)
       (snd (Opt.adaptive_query_ev est ~split:false fused)));
  let missing =
    List.filter (fun r -> not (Hashtbl.mem fired r)) Opt.rule_names
  in
  Alcotest.(check (list string)) "every optimizer rule is exercised" []
    missing

let test_empty_collapse () =
  check_rule "operators over empty source"
    (ints [||] |> Query.select (fun x -> I.(x * x)) |> Query.rev)
    [ "empty-collapse"; "empty-collapse" ];
  check_rule "empty range"
    (Query.range ~start:5 ~count:0 |> Query.distinct)
    [ "empty-collapse" ];
  (* Join with one statically empty side. *)
  check_rule "join with empty inner"
    (ints data
    |> Query.join ~inner:(ints [||])
         ~outer_key:(fun x -> x)
         ~inner_key:(fun x -> x)
         ~result:(fun x y -> I.(x + y)))
    [ "empty-collapse" ]

let test_scalar_rewrites () =
  let sq =
    ints data |> Query.where even
    |> Query.where (fun x -> I.(x < Expr.int 10))
    |> Query.sum_int
  in
  let _, log = Opt.scalar sq in
  Alcotest.(check (list string)) "scalar log" [ "where-fuse" ] log;
  let expected = Reference.scalar sq in
  List.iter
    (fun b ->
      List.iter
        (fun optimize ->
          Alcotest.(check int)
            (Printf.sprintf "sum on %s" (Steno.backend_name b))
            expected
            (Steno.Engine.scalar (engine ~optimize b) sq))
        [ true; false ])
    backends

(* Chain-level rules (these act on canonicalized QUIL, below the AST). *)

let test_chain_rev_rev () =
  let q = ints data |> Query.where even |> Query.rev |> Query.rev in
  let c = Canon.of_query q in
  let c', log = Opt.chain c in
  Alcotest.(check (list string)) "chain log" [ "quil-rev-rev" ] log;
  Alcotest.(check int) "two sinks removed"
    (Quil.operator_count c - 2)
    (Quil.operator_count c');
  check_differential "rev rev" q

let test_chain_drop_to_array () =
  let q =
    ints data |> Query.materialize |> Query.order_by (fun x -> x)
  in
  let c = Canon.of_query q in
  let c', log = Opt.chain c in
  Alcotest.(check (list string)) "chain log" [ "quil-drop-to-array" ] log;
  Alcotest.(check int) "one sink removed"
    (Quil.operator_count c - 1)
    (Quil.operator_count c');
  check_differential "materialize before sort" q

let test_chain_fixpoint () =
  (* Rev ; ToArray ; ToArray ; Rev needs a second pass: dropping the
     ToArrays only then makes the Reverse pair adjacent. *)
  let q =
    ints data |> Query.rev |> Query.materialize |> Query.materialize
    |> Query.rev
  in
  let c = Canon.of_query q in
  let c', log = Opt.chain c in
  Alcotest.(check (list string))
    "chain log"
    [ "quil-drop-to-array"; "quil-drop-to-array"; "quil-rev-rev" ]
    log;
  Alcotest.(check int) "all four ops removed"
    (Quil.operator_count c - 4)
    (Quil.operator_count c');
  check_differential "rev toarray toarray rev" q

(* The engine surface: rewrite logs on preparations, explain, and the
   optimize=false escape hatch. *)

let test_prepared_rewrite_log () =
  let q = ints data |> Query.where even |> Query.where even in
  let p = Steno.Engine.prepare (engine ~optimize:true Steno.Fused) q in
  Alcotest.(check (list string))
    "log on" [ "where-fuse" ]
    (Steno.Prepared.rewrite_log p);
  Alcotest.(check bool) "backend accessor" true
    (Steno.Prepared.backend_used p = Steno.Fused);
  let p0 = Steno.Engine.prepare (engine ~optimize:false Steno.Fused) q in
  Alcotest.(check (list string)) "log off" [] (Steno.Prepared.rewrite_log p0);
  (* Runs are repeatable and the accessors are stable across runs. *)
  Alcotest.(check bool) "re-run" true
    (Steno.Prepared.run p = Steno.Prepared.run p);
  Alcotest.(check bool) "diagnostics accessor" true
    (Steno.Prepared.diagnostics p = [])

let test_native_rewrite_log_has_chain_rules () =
  if not (Steno.native_available ()) then ()
  else begin
    (* The Rev pair now cancels at the AST level ([rev-rev]), so reach
       the chain pass with a shape only canonicalization exposes: a
       Materialize whose ToArray sink is redundant before a sort. *)
    let q =
      ints data |> Query.where even |> Query.materialize
      |> Query.order_by (fun x -> x)
    in
    let p = Steno.Engine.prepare (engine ~optimize:true Steno.Native) q in
    Alcotest.(check (list string))
      "ast + chain rules" [ "quil-drop-to-array" ]
      (Steno.Prepared.rewrite_log p)
  end

let test_explain () =
  let eng = engine ~optimize:true Steno.Fused in
  let q =
    ints data |> Query.where even |> Query.where even |> Query.take 5
    |> Query.take 3
  in
  let ex = Steno.Engine.explain eng q in
  Alcotest.(check (list string))
    "rules" [ "where-fuse"; "take-take" ]
    ex.Steno.Engine.rules;
  Alcotest.(check bool) "shrinks" true
    (ex.Steno.Engine.operators_after < ex.Steno.Engine.operators_before);
  let rendered = Steno.Engine.explain_to_string ex in
  List.iter
    (fun needle ->
      if
        not
          (List.exists
             (fun line ->
               String.length line >= String.length needle
               && String.sub line 0 (String.length needle) = needle)
             (String.split_on_char '\n' rendered
             |> List.map String.trim))
      then Alcotest.failf "explain_to_string misses %S in:\n%s" needle rendered)
    [ "plan before:"; "plan after:"; "operators:"; "rules applied:"; "- where-fuse" ];
  (* With the optimizer off, explain reports the plan unchanged. *)
  let ex0 = Steno.Engine.explain (engine ~optimize:false Steno.Fused) q in
  Alcotest.(check (list string)) "no rules" [] ex0.Steno.Engine.rules;
  Alcotest.(check int) "same plan" ex0.Steno.Engine.operators_before
    ex0.Steno.Engine.operators_after

let test_optimize_off_escape_hatch () =
  (* optimize=false runs the plan as written: the telemetry trace shows
     no optimize span and the results still agree. *)
  let collector = Telemetry.Collector.create () in
  let eng =
    Steno.Engine.(
      create
        {
          default_config with
          backend = Steno.Fused;
          optimize = false;
          telemetry = Telemetry.Collector.sink collector;
        })
  in
  let q = ints data |> Query.where even |> Query.where even in
  ignore (Steno.Engine.to_array eng q);
  let spans = Telemetry.Collector.spans collector in
  Alcotest.(check bool) "no optimize span" false
    (List.exists (fun s -> s.Telemetry.name = "optimize") spans)

let test_optimize_telemetry () =
  let collector = Telemetry.Collector.create () in
  let eng =
    Steno.Engine.(
      create
        {
          default_config with
          backend = Steno.Fused;
          optimize = true;
          telemetry = Telemetry.Collector.sink collector;
        })
  in
  let q = ints data |> Query.where even |> Query.where even in
  ignore (Steno.Engine.to_array eng q);
  let spans = Telemetry.Collector.spans collector in
  Alcotest.(check bool) "optimize span" true
    (List.exists (fun s -> s.Telemetry.name = "optimize") spans);
  Alcotest.(check bool) "rules counter" true
    (List.mem_assoc "optimize.rules_applied"
       (Telemetry.Collector.counters collector))

(* Property tests: random redundant pipelines. *)

let op_gen =
  let open QCheck in
  Gen.oneof
    [
      Gen.map
        (fun k q -> Query.select (fun x -> I.(x + Expr.int k)) q)
        Gen.small_int;
      Gen.map
        (fun k q ->
          Query.where
            (fun x -> I.(x mod Expr.int Stdlib.(2 + (k mod 3)) = Expr.int 0))
            q)
        Gen.small_int;
      Gen.return (fun q -> Query.where (fun _ -> Expr.bool true) q);
      Gen.return (fun q -> Query.where (fun _ -> Expr.bool false) q);
      Gen.map (fun n q -> Query.take (n mod 12) q) Gen.small_int;
      Gen.map (fun n q -> Query.skip (n mod 6) q) Gen.small_int;
      Gen.return (fun q -> Query.distinct q);
      Gen.return (fun q -> Query.rev q);
      Gen.return (fun q -> Query.materialize q);
      Gen.return
        (fun q -> Query.take_while (fun _ -> Expr.bool true) q);
      Gen.return (fun q -> Query.order_by (fun x -> I.(x mod Expr.int 5)) q);
    ]

let pipeline_gen =
  QCheck.Gen.(
    pair (list_size (int_bound 8) op_gen) (array_size (int_bound 12) (int_bound 20)))

let build (ops, data) = List.fold_left (fun q op -> op q) (ints data) ops

(* Second rewrite is a no-op: the fixpoint really is a normal form. *)
let random_idempotent =
  QCheck.Test.make ~name:"rewrite is idempotent (second pass fires no rules)"
    ~count:200 (QCheck.make pipeline_gen) (fun input ->
      let q1, _ = Opt.query (build input) in
      let q2, log2 = Opt.query q1 in
      log2 = [] && Query.operator_count q2 = Query.operator_count q1)

(* Rewriting (AST pass + chain pass) never grows the canonicalized plan. *)
let random_operator_count =
  QCheck.Test.make
    ~name:"optimized QUIL never has more operators than the original"
    ~count:200 (QCheck.make pipeline_gen) (fun input ->
      let q = build input in
      let before = Quil.operator_count (Canon.of_query q) in
      let q', _ = Opt.query q in
      let c', _ = Opt.chain (Canon.of_query q') in
      Quil.operator_count c' <= before)

(* Rewritten queries still mean the same thing (Linq/Fused only: a native
   compile per random case would dominate the suite's runtime). *)
let random_differential =
  QCheck.Test.make ~name:"optimized results match reference" ~count:100
    (QCheck.make pipeline_gen) (fun input ->
      let q = build input in
      let expected = Reference.to_list q in
      List.for_all
        (fun b -> Steno.Engine.to_list (engine ~optimize:true b) q = expected)
        [ Steno.Linq; Steno.Fused ])

let () =
  Alcotest.run "opt"
    [
      ( "rules",
        [
          Alcotest.test_case "where-fuse" `Quick test_where_fuse;
          Alcotest.test_case "select-fuse" `Quick test_select_fuse;
          Alcotest.test_case "take-take" `Quick test_take_take;
          Alcotest.test_case "skip-skip" `Quick test_skip_skip;
          Alcotest.test_case "take-zero" `Quick test_take_zero;
          Alcotest.test_case "where-const" `Quick test_where_const;
          Alcotest.test_case "while-const" `Quick test_while_const;
          Alcotest.test_case "distinct-distinct" `Quick test_distinct_distinct;
          Alcotest.test_case "distinct-on-distinct-free" `Quick
            test_distinct_on_distinct_free;
          Alcotest.test_case "orderby-on-sorted" `Quick test_orderby_on_sorted;
          Alcotest.test_case "rev-rev" `Quick test_ast_rev_rev;
          Alcotest.test_case "nonempty-any-true" `Quick test_nonempty_any_true;
          Alcotest.test_case "empty-collapse" `Quick test_empty_collapse;
          Alcotest.test_case "scalar" `Quick test_scalar_rewrites;
          Alcotest.test_case "rule coverage" `Quick test_rule_coverage;
        ] );
      ( "chain",
        [
          Alcotest.test_case "rev-rev" `Quick test_chain_rev_rev;
          Alcotest.test_case "drop-to-array" `Quick test_chain_drop_to_array;
          Alcotest.test_case "fixpoint" `Quick test_chain_fixpoint;
        ] );
      ( "engine",
        [
          Alcotest.test_case "rewrite log" `Quick test_prepared_rewrite_log;
          Alcotest.test_case "native chain log" `Quick
            test_native_rewrite_log_has_chain_rules;
          Alcotest.test_case "explain" `Quick test_explain;
          Alcotest.test_case "escape hatch" `Quick
            test_optimize_off_escape_hatch;
          Alcotest.test_case "telemetry" `Quick test_optimize_telemetry;
        ] );
      ( "property",
        [
          QCheck_alcotest.to_alcotest random_idempotent;
          QCheck_alcotest.to_alcotest random_operator_count;
          QCheck_alcotest.to_alcotest random_differential;
        ] );
    ]
