(* stenoc: inspect and run Steno's optimization pipeline on a gallery of
   demo queries.

     stenoc list
     stenoc show <query>            print chain, QUIL and generated code
     stenoc run <query> [-b BACKEND] [-n SIZE] [--trace]
     stenoc bench <query> [-n SIZE]
     stenoc stats <query> [-b BACKEND] [-n SIZE] [--reps R]
     stenoc lint [<query> | --all]   static checks with rule codes
     stenoc verify [<query> | --all] translation-validate the optimizer
     stenoc cost <query> [-n SIZE] [--reps R]   profile, then re-prepare
                                     and print the cost-based decisions
*)

module I = Expr.Infix

type demo =
  | Collection : {
      name : string;
      descr : string;
      elem : 'a Ty.t;
      build : int -> 'a Query.t;
    }
      -> demo
  | Scalar : {
      name : string;
      descr : string;
      ty : 's Ty.t;
      build : int -> 's Query.sq;
    }
      -> demo

let float_input n = Array.init n (fun i -> float_of_int (i mod 1000) /. 997.0)

let int_input n = Array.init n (fun i -> (i * 37) mod 1009)

(* Expensive and almost always true, yet opaque to the interval
   analysis (a provable predicate would be deleted, not reordered): an
   iterated hash compared one below the modulus range's top. *)
let needle_expensive x =
  let h = ref I.(x * Expr.int 131 + Expr.int 7) in
  for _ = 1 to 6 do
    h := I.((!h * Expr.int 131 + Expr.int 7) mod Expr.int 1000003)
  done;
  I.(!h < Expr.int 1000002)

let needle_cheap x = I.(x mod Expr.int 997 = Expr.int 0)

let demos =
  [
    Collection
      {
        name = "even-squares";
        descr = "where (x mod 2 = 0) |> select (x * x) - the paper's intro query";
        elem = Ty.Int;
        build =
          (fun n ->
            Query.of_array Ty.Int (int_input n)
            |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
            |> Query.select (fun x -> I.(x * x)));
      };
    Scalar
      {
        name = "sumsq";
        descr = "sum of squares of doubles (Fig. 1)";
        ty = Ty.Float;
        build =
          (fun n ->
            Query.of_array Ty.Float (float_input n)
            |> Query.select (fun x -> I.(x *. x))
            |> Query.sum_float);
      };
    Scalar
      {
        name = "cart";
        descr = "sum over a Cartesian product (nested loops, section 5)";
        ty = Ty.Float;
        build =
          (fun n ->
            Query.of_array Ty.Float (float_input (max 1 (n / 100)))
            |> Query.select_many (fun x ->
                   Query.of_array Ty.Float (float_input 100)
                   |> Query.select (fun y -> I.(x *. y)))
            |> Query.sum_float);
      };
    Collection
      {
        name = "histogram";
        descr = "GroupBy + count: auto-specialized to GroupByAggregate (4.3)";
        elem = Ty.Pair (Ty.Int, Ty.Int);
        build =
          (fun n ->
            Query.of_array Ty.Int (int_input n)
            |> Query.group_by (fun x -> I.(x mod Expr.int 16))
            |> Query.select (fun g ->
                   Expr.Pair (Expr.Fst g, Expr.Array_length (Expr.Snd g))));
      };
    Collection
      {
        name = "join";
        descr = "equi-join: specialized to a hash join";
        elem = Ty.Pair (Ty.Int, Ty.Int);
        build =
          (fun n ->
            let pairs xs = Query.of_array (Ty.Pair (Ty.Int, Ty.Int)) xs in
            let left = pairs (Array.init n (fun i -> i mod 101, i)) in
            let right =
              pairs (Array.init (max 1 (n / 2)) (fun i -> i mod 101, i * 2))
            in
            left
            |> Query.join ~inner:right
                 ~outer_key:(fun l -> Expr.Fst l)
                 ~inner_key:(fun r -> Expr.Fst r)
                 ~result:(fun l r -> Expr.Pair (Expr.Snd l, Expr.Snd r)));
      };
    Collection
      {
        name = "top5";
        descr = "filter |> sort descending |> take 5";
        elem = Ty.Int;
        build =
          (fun n ->
            Query.of_array Ty.Int (int_input n)
            |> Query.where (fun x -> I.(x mod Expr.int 3 = Expr.int 0))
            |> Query.order_by ~order:Query.Descending (fun x -> x)
            |> Query.take 5);
      };
    Scalar
      {
        name = "closest";
        descr = "nested scalar subquery: argmin distance (k-means kernel)";
        ty = Ty.Int;
        build =
          (fun n ->
            let pts = float_input (max 8 n) in
            let c = Expr.capture (Ty.Array Ty.Float) pts in
            Query.range ~start:0 ~count:(min 64 (max 8 n))
            |> Query.min_by (fun j ->
                   Expr.let_ "d" I.(c.%(j) -. Expr.float 0.5) (fun d -> I.(d *. d))));
      };
    Collection
      {
        name = "redundant";
        descr =
          "stacked wheres/selects/takes/skips + rev rev: optimizer showcase";
        elem = Ty.Int;
        build =
          (fun n ->
            Query.of_array Ty.Int (int_input n)
            |> Query.where (fun x -> I.(x mod Expr.int 2 = Expr.int 0))
            |> Query.where (fun x -> I.(x < Expr.int 900))
            |> Query.where (fun _ -> Expr.bool true)
            |> Query.select (fun x -> I.(x * x))
            |> Query.select (fun x -> I.(x + Expr.int 1))
            |> Query.skip 2 |> Query.skip 3
            |> Query.take 100 |> Query.take 50
            |> Query.rev |> Query.rev);
      };
    Collection
      {
        name = "needle";
        descr =
          "expensive always-true filter before a cheap selective one: \
           statically pessimal, fixed by the adaptive reorder";
        elem = Ty.Int;
        build =
          (fun n ->
            Query.of_array Ty.Int (int_input n)
            |> Query.where needle_expensive
            |> Query.where needle_cheap);
      };
    Scalar
      {
        name = "exists";
        descr = "early-exit aggregate: stops at the first witness";
        ty = Ty.Bool;
        build =
          (fun n ->
            Query.of_array Ty.Int (int_input n)
            |> Query.exists (fun x -> I.(x = Expr.int 1000)));
      };
  ]

let demo_name = function
  | Collection { name; _ } | Scalar { name; _ } -> name

let demo_descr = function
  | Collection { descr; _ } | Scalar { descr; _ } -> descr

let find name =
  match List.find_opt (fun d -> demo_name d = name) demos with
  | Some d -> Ok d
  | None ->
    Error
      (Printf.sprintf "unknown query %S; try: %s" name
         (String.concat ", " (List.map demo_name demos)))

(* Unknown-demo exit: name what exists and use a distinct status (2) so
   scripts can tell "no such demo" from "demo failed". *)
let unknown_demo name =
  Printf.eprintf "unknown demo %S. Available demos:\n" name;
  List.iter
    (fun d -> Printf.eprintf "  %-14s %s\n" (demo_name d) (demo_descr d))
    demos;
  2

let backend_of_string = function
  | "linq" -> Ok Steno.Linq
  | "fused" -> Ok Steno.Fused
  | "native" -> Ok Steno.Native
  | s -> Error (Printf.sprintf "unknown backend %S (linq|fused|native)" s)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, 1000.0 *. (Unix.gettimeofday () -. t0))

(* Commands. *)

let cmd_list () =
  List.iter
    (fun d -> Printf.printf "%-14s %s\n" (demo_name d) (demo_descr d))
    demos;
  0

let cmd_show name n =
  match find name with
  | Error e ->
    prerr_endline e;
    1
  | Ok (Collection { build; _ }) ->
    let q = build n in
    Format.printf "chain: %a@." Query.pp q;
    Printf.printf "QUIL:  %s\n\n%s" (Steno.quil q) (Steno.generated_source q);
    0
  | Ok (Scalar { build; _ }) ->
    let sq = build n in
    Format.printf "chain: %a@." Query.pp_sq sq;
    Printf.printf "QUIL:  %s\n\n%s" (Steno.quil_scalar sq)
      (Steno.generated_source_scalar sq);
    0

let preview : type a. a Ty.t -> a array -> string =
 fun ty arr ->
  let n = Array.length arr in
  let shown = min n 10 in
  let items =
    Array.to_list (Array.sub arr 0 shown)
    |> List.map (fun v -> Format.asprintf "%a" (Ty.pp_value ty) v)
  in
  Printf.sprintf "[%s%s] (%d elements)" (String.concat "; " items)
    (if n > shown then "; ..." else "")
    n

let engine_with backend sink =
  Steno.Engine.(
    create { default_config with backend; telemetry = sink })

let describe_fallback info =
  match info.Steno.fallback with
  | None -> ()
  | Some reason ->
    Printf.printf "(fell back from %s to %s: %s)\n"
      (Steno.backend_name info.Steno.requested)
      (Steno.backend_name info.Steno.backend)
      (Steno.fallback_reason_message reason)

let describe_rewrites = function
  | [] -> print_endline "rewrites: (none)"
  | rules -> Printf.printf "rewrites: %s\n" (String.concat ", " rules)

let cmd_run name backend n trace =
  match find name, backend_of_string backend with
  | Error e, _ | _, Error e ->
    prerr_endline e;
    1
  | Ok demo, Ok b ->
    let collector = Telemetry.Collector.create () in
    let sink =
      if trace then Telemetry.Collector.sink collector else Telemetry.null
    in
    let eng = engine_with b sink in
    (match demo with
    | Collection { elem; build; _ } ->
      let p, t_prep = time (fun () -> Steno.Engine.prepare eng (build n)) in
      let result, t_run = time (fun () -> Steno.Prepared.run p) in
      Printf.printf "%s\nprepare: %.1f ms, run: %.1f ms\n" (preview elem result)
        t_prep t_run;
      describe_fallback (Steno.Prepared.compile_info p);
      if trace then describe_rewrites (Steno.Prepared.rewrite_log p)
    | Scalar { ty; build; _ } ->
      let p, t_prep =
        time (fun () -> Steno.Engine.prepare_scalar eng (build n))
      in
      let result, t_run = time (fun () -> Steno.Prepared_scalar.run p) in
      Format.printf "%a@." (Ty.pp_value ty) result;
      Printf.printf "prepare: %.1f ms, run: %.1f ms\n" t_prep t_run;
      describe_fallback (Steno.Prepared_scalar.compile_info p);
      if trace then describe_rewrites (Steno.Prepared_scalar.rewrite_log p));
    if trace then begin
      Printf.printf "\ntrace:\n%s" (Telemetry.Collector.tree collector);
      match Telemetry.Collector.counters collector with
      | [] -> ()
      | counters ->
        print_endline "counters:";
        List.iter
          (fun (k, v) -> Printf.printf "  %-18s %d\n" k v)
          counters
    end;
    0

(* Repeated prepare+run of one query through a fresh engine: the cache /
   telemetry roll-up view. *)
let cmd_stats name backend n reps =
  match find name, backend_of_string backend with
  | Error e, _ | _, Error e ->
    prerr_endline e;
    1
  | Ok demo, Ok b ->
    let collector = Telemetry.Collector.create () in
    let eng = engine_with b (Telemetry.Collector.sink collector) in
    let reps = max 1 reps in
    for _ = 1 to reps do
      match demo with
      | Collection { build; _ } ->
        ignore (Steno.Prepared.run (Steno.Engine.prepare eng (build n)))
      | Scalar { build; _ } ->
        ignore (Steno.Prepared_scalar.run (Steno.Engine.prepare_scalar eng (build n)))
    done;
    Printf.printf "%d x prepare+run of %S on %s (n = %d)\n\n" reps name
      (Steno.backend_name b) n;
    let stats = Steno.Engine.cache_stats eng in
    if
      stats.Steno.Engine.entries = 0
      && stats.Steno.Engine.hits + stats.Steno.Engine.misses = 0
    then
      (* Nothing went through the cache (staged backends don't compile):
         say so instead of printing a row of zeros. *)
      Printf.printf "plugin cache: empty (capacity %d)\n\n"
        stats.Steno.Engine.capacity
    else
      Printf.printf
        "plugin cache: %d/%d entries, %d hits, %d misses, %d evictions\n\n"
        stats.Steno.Engine.entries stats.Steno.Engine.capacity
        stats.Steno.Engine.hits stats.Steno.Engine.misses
        stats.Steno.Engine.evictions;
    Printf.printf "%-12s %8s %12s %12s\n" "stage" "spans" "total(ms)"
      "mean(ms)";
    let spans = Telemetry.Collector.spans collector in
    List.iter
      (fun stage ->
        let matching =
          List.filter (fun s -> s.Telemetry.name = stage) spans
        in
        if matching <> [] then begin
          let total = Telemetry.Collector.total_ms collector stage in
          Printf.printf "%-12s %8d %12.3f %12.3f\n" stage
            (List.length matching) total
            (total /. float_of_int (List.length matching))
        end)
      [
        "prepare"; "optimize"; "specialize"; "canon"; "codegen"; "compile";
        "dynlink"; "env-bind"; "stage"; "run";
      ];
    (match Telemetry.Collector.counters collector with
    | [] -> ()
    | counters ->
      print_newline ();
      print_endline "counters:";
      List.iter (fun (k, v) -> Printf.printf "  %-18s %d\n" k v) counters);
    0

(* Profiled execution of one demo on every available backend: the
   optimizer's before/after view annotated with what actually flowed
   through each operator. *)
let cmd_analyze name n =
  match find name with
  | Error _ -> unknown_demo name
  | Ok demo ->
    let backends =
      if Steno.native_available () then
        [ Steno.Linq; Steno.Fused; Steno.Native ]
      else [ Steno.Linq; Steno.Fused ]
    in
    List.iter
      (fun b ->
        let eng = engine_with b Telemetry.null in
        let a =
          match demo with
          | Collection { build; _ } ->
            Steno.Engine.explain_analyze eng (build n)
          | Scalar { build; _ } ->
            Steno.Engine.explain_analyze_scalar eng (build n)
        in
        Printf.printf "=== %s ===\n%s\n" (Steno.backend_name b)
          (Steno.Engine.analysis_to_string a))
      backends;
    0

(* Close the profiler→optimizer loop on one demo: profiled runs feed
   the engine's statistics store, and a second preparation of the same
   plan consumes them — reordering filters, choosing a backend — with
   every decision printed. *)
let cmd_cost name n reps =
  match find name with
  | Error _ -> unknown_demo name
  | Ok demo ->
    let eng =
      Steno.Engine.create
        Steno.Config.(
          default |> with_backend Steno.Fused |> with_profile true
          |> with_adaptive)
    in
    let describe_prep label rules decisions =
      Printf.printf "%s:\n" label;
      (match rules with
      | [] -> print_endline "  rewrites: (none)"
      | rs -> Printf.printf "  rewrites: %s\n" (String.concat ", " rs));
      List.iter (fun d -> Printf.printf "  %s\n" d) decisions
    in
    let describe_store key =
      let store = Steno.Engine.cost_store eng in
      match Steno.Cost.snapshot store ~key with
      | None -> print_endline "statistics: (none recorded)"
      | Some s ->
        Printf.printf "statistics: epoch %d, %d runs, %d source rows\n"
          s.Steno.Cost.sn_epoch s.Steno.Cost.sn_runs s.Steno.Cost.sn_source_rows;
        List.iter
          (fun p ->
            let sel =
              if p.Steno.Cost.sn_tested = 0 then "n/a"
              else
                Printf.sprintf "%.4f"
                  (float_of_int p.Steno.Cost.sn_passed
                  /. float_of_int p.Steno.Cost.sn_tested)
            in
            let d = p.Steno.Cost.sn_digest in
            let d =
              if String.length d <= 48 then d
              else String.sub d 0 45 ^ "..."
            in
            Printf.printf "  pred %-48s  tested %d  passed %d  selectivity %s\n"
              d p.Steno.Cost.sn_tested p.Steno.Cost.sn_passed sel)
          s.Steno.Cost.sn_preds
    in
    let timed_runs run =
      let _, ms = time (fun () -> for _ = 1 to reps do ignore (run ()) done) in
      Printf.printf "%d runs: %.2f ms\n" reps ms
    in
    (match demo with
    | Collection { build; _ } ->
      let q = build n in
      let key = Steno.Cost.plan_key ~optimize:true (fst (Opt.query_ev q)) in
      let p1 = Steno.Engine.prepare eng q in
      describe_prep "first prepare (static priors)"
        (Steno.Prepared.rewrite_log p1)
        (Steno.Prepared.decisions p1);
      timed_runs (fun () -> Steno.Prepared.run p1);
      describe_store key;
      let p2 = Steno.Engine.prepare eng q in
      describe_prep "second prepare (observed statistics)"
        (Steno.Prepared.rewrite_log p2)
        (Steno.Prepared.decisions p2);
      timed_runs (fun () -> Steno.Prepared.run p2)
    | Scalar { build; _ } ->
      let sq = build n in
      let key = Steno.Cost.scalar_key ~optimize:true (fst (Opt.scalar_ev sq)) in
      let p1 = Steno.Engine.prepare_scalar eng sq in
      describe_prep "first prepare (static priors)"
        (Steno.Prepared_scalar.rewrite_log p1)
        (Steno.Prepared_scalar.decisions p1);
      timed_runs (fun () -> Steno.Prepared_scalar.run p1);
      describe_store key;
      let p2 = Steno.Engine.prepare_scalar eng sq in
      describe_prep "second prepare (observed statistics)"
        (Steno.Prepared_scalar.rewrite_log p2)
        (Steno.Prepared_scalar.decisions p2);
      timed_runs (fun () -> Steno.Prepared_scalar.run p2));
    0

(* Exercise a profiling engine across the demo gallery and dump the
   resulting registry in OpenMetrics text format. *)
let cmd_metrics n =
  let reg = Metrics.create () in
  let eng =
    Steno.Engine.(
      create
        {
          default_config with
          profile = true;
          metrics = reg;
          telemetry = Telemetry.metrics reg;
          adaptive = Some { Steno.Config.drift = 0.3; fused_below = 64 };
        })
  in
  let backends =
    if Steno.native_available () then
      [ Steno.Linq; Steno.Fused; Steno.Native ]
    else [ Steno.Linq; Steno.Fused ]
  in
  List.iter
    (fun demo ->
      List.iter
        (fun b ->
          match demo with
          | Collection { build; _ } ->
            ignore (Steno.Engine.to_array ~backend:b eng (build n))
          | Scalar { build; _ } ->
            ignore (Steno.Engine.scalar ~backend:b eng (build n)))
        backends)
    demos;
  (* Run the statically-pessimal needle demo twice on one backend: the
     second preparation consumes the first run's selectivities, so the
     steno_adaptive_total{decision="reorder"} family carries a real
     count in the dump. *)
  (match find "needle" with
  | Ok (Collection { build; _ }) ->
    let q = build n in
    ignore (Steno.Engine.to_array ~backend:Steno.Fused eng q);
    ignore (Steno.Engine.to_array ~backend:Steno.Fused eng q)
  | _ -> ());
  (* A parallel run so the per-partition families appear too. *)
  let xs = int_input n in
  ignore
    (Par.scalar_auto ~engine:eng
       (Query.of_array Ty.Int xs
       |> Query.select (fun x -> I.(x * x))
       |> Query.sum_int));
  (* A decomposed Average: its (sum, count) partials go through the
     Agg-star merge, populating steno_agg_merge_ms. *)
  let fs = Array.init (max 1 n) (fun i -> float_of_int i) in
  ignore
    (Par.scalar_auto ~engine:eng
       (Query.of_array Ty.Float fs |> Query.average));
  (* Exercise the persistent plugin cache and tiered execution against a
     scratch store, so their metric families carry real values in the
     dump.  Both engines share [reg]; the tiering engine must not
     profile (tiering and profiling are mutually exclusive). *)
  let pdir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "stenoc-metrics-pcache-%d" (Unix.getpid ()))
  in
  let pcfg =
    Steno.Config.(
      default |> with_metrics reg |> with_disk_cache ~dir:pdir
      |> with_tiering ~threshold:2)
  in
  (if Steno.native_available () then begin
     let sq =
       Query.of_array Ty.Int (int_input (max 16 n))
       |> Query.select (fun x -> I.(x + Expr.int 9_000_001))
       |> Query.sum_int
     in
     (* First engine compiles and publishes; a second engine on the same
        store loads from disk — one pcache miss, one hit. *)
     ignore
       (Steno.Engine.scalar ~backend:Steno.Native
          (Steno.Engine.create Steno.Config.(pcfg |> without_tiering))
          sq);
     let tiered = Steno.Engine.create pcfg in
     let p = Steno.Engine.prepare_scalar ~backend:Steno.Native tiered sq in
     for _ = 1 to 3 do
       ignore (Steno.Prepared_scalar.run p)
     done;
     (* Bounded wait for the background promotion to count itself. *)
     let deadline = Unix.gettimeofday () +. 5.0 in
     while
       Steno.Prepared_scalar.backend_used p <> Steno.Native
       && Unix.gettimeofday () < deadline
     do
       Unix.sleepf 0.005
     done
   end
   else
     (* No compiler: still create the engines so the pcache/tiering
        families render (at zero). *)
     ignore (Steno.Engine.create pcfg));
  (try
     let rec rm d =
       Sys.readdir d
       |> Array.iter (fun f ->
              let p = Filename.concat d f in
              if Sys.is_directory p then rm p else Sys.remove p);
       Unix.rmdir d
     in
     if Sys.file_exists pdir then rm pdir
   with _ -> ());
  let stats = Steno.Engine.cache_stats eng in
  let set name help v =
    Metrics.set_gauge
      (Metrics.gauge reg name ~help ~labels:[])
      (float_of_int v)
  in
  set "steno_cache_entries" "Compiled plugins currently cached"
    stats.Steno.Engine.entries;
  set "steno_cache_hits" "Plugin cache hits" stats.Steno.Engine.hits;
  set "steno_cache_misses" "Plugin cache misses" stats.Steno.Engine.misses;
  set "steno_cache_evictions" "Plugin cache evictions"
    stats.Steno.Engine.evictions;
  print_string (Metrics.render reg);
  0

(* A small self-contained stress of the serving layer: simulated tenants
   on the domain pool submit the sumsq demo through one Server over one
   Engine, then the metrics registry is dumped in OpenMetrics format —
   the per-tenant series ([client="tenant-N"]) and the server request /
   queue families are what an operator would scrape. *)
let cmd_serve clients requests n admin_port hold =
  let clients = max 1 clients in
  let requests = max 1 requests in
  let reg = Metrics.create () in
  let cfg = Steno.Config.(default |> with_metrics reg) in
  (* The admin listener only makes sense with something to look at, so
     [--admin-port] also turns tracing on (full sampling, 5 ms slow
     threshold). *)
  let cfg =
    match admin_port with
    | None -> cfg
    | Some port ->
      Steno.Config.(cfg |> with_tracing ~slow_ms:5.0 |> with_admin ~port)
  in
  let eng = Steno.Engine.create cfg in
  let ops = Option.map (fun _ -> Ops.start eng) admin_port in
  let srv = Server.create eng in
  let xs = int_input n in
  let q =
    Query.of_array Ty.Int xs
    |> Query.select (fun x -> I.(x * x))
    |> Query.sum_int
  in
  let workers = min 4 (max 2 (Domain_pool.recommended_workers ())) in
  let completed_per_client =
    Domain_pool.run ~workers ~tasks:clients (fun c ->
        let completed = ref 0 in
        for _ = 1 to requests do
          match
            Server.submit srv
              ~client_id:(Printf.sprintf "tenant-%d" (c mod 4))
              (fun sess -> Steno.Session.scalar sess q)
          with
          | Server.Done _ -> incr completed
          | Server.Rejected _ -> ()
          | Server.Failed e -> raise e
        done;
        !completed)
  in
  let completed = Array.fold_left ( + ) 0 completed_per_client in
  let st = Server.stats srv in
  Printf.printf
    "# %d clients x %d requests: %d completed, %d rejected, %d failed\n"
    clients requests completed st.Server.rejected st.Server.failed;
  print_string (Metrics.render reg);
  (match ops with
  | None -> ()
  | Some o ->
    (* Announce the bound port (meaningful with --admin-port 0) and
       keep the process — and the listener — alive for [hold] seconds,
       so an external scraper can hit the endpoints. *)
    Printf.printf "# admin listening on http://127.0.0.1:%d\n%!" (Ops.port o);
    if hold > 0.0 then Unix.sleepf hold;
    Ops.stop o);
  if st.Server.failed > 0 then 1 else 0

(* A traced, tiered workload through the serving layer: the trace
   source behind [trace export] and [trace slow].  Threshold 1 makes
   the very first request trip a background promotion compile, whose
   spans land in that request's trace via the domain pool's context
   propagation — so the export demonstrates a cross-domain trace. *)
let trace_workload n =
  let reg = Metrics.create () in
  let cfg =
    Steno.Config.(
      default |> with_metrics reg
      |> with_tracing ~slow_ms:0.0
      |> with_tiering ~threshold:1)
  in
  let eng = Steno.Engine.create cfg in
  let srv = Server.create eng in
  let xs = int_input n in
  let q =
    Query.of_array Ty.Int xs
    |> Query.select (fun x -> I.(x * x))
    |> Query.sum_int
  in
  for _ = 1 to 4 do
    match
      Server.submit srv ~client_id:"trace" (fun sess ->
          Steno.Session.scalar sess q)
    with
    | Server.Failed e -> raise e
    | Server.Done _ | Server.Rejected _ -> ()
  done;
  (* The promotion compile runs on a pool domain after the requests
     return; wait (bounded) for its outcome so the exported trace
     contains the compile spans. *)
  let promo result =
    Metrics.counter_value
      (Metrics.counter reg "steno_tier_promotions" ~labels:[ "result", result ])
  in
  let deadline = Unix.gettimeofday () +. 5.0 in
  while promo "ok" + promo "failed" = 0 && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  eng

let cmd_trace_export n =
  print_string (Trace.export_chrome (Steno.Engine.tracer (trace_workload n)));
  0

let cmd_trace_slow n =
  print_string (Trace.slow_report (Steno.Engine.tracer (trace_workload n)));
  0

(* Operator maintenance of the persistent plugin store.  A handle's
   hit/miss counters are per-process, so [stats] reports only the disk
   figures; [clear] empties this toolchain's subdirectory. *)
let pcache_open dir =
  let dir = match dir with Some d -> d | None -> Pcache.default_dir () in
  dir, Pcache.create ~fingerprint:(Dynload.fingerprint ()) ~dir ()

let cmd_pcache_stats dir =
  let root, pc = pcache_open dir in
  let s = Pcache.stats pc in
  Printf.printf "store root:   %s\n" root;
  Printf.printf "fingerprint:  %s\n" (Dynload.fingerprint ());
  Printf.printf "store dir:    %s\n" (Pcache.dir pc);
  Printf.printf "entries:      %d\n" s.Pcache.st_entries;
  Printf.printf "bytes:        %d\n" s.Pcache.st_bytes;
  0

let cmd_pcache_clear dir =
  let _, pc = pcache_open dir in
  let removed = Pcache.clear pc in
  Printf.printf "removed %d entries from %s\n" removed (Pcache.dir pc);
  0

let cmd_bench name n =
  match find name with
  | Error e ->
    prerr_endline e;
    1
  | Ok demo ->
    let backends =
      if Steno.native_available () then
        [ "linq", Steno.Linq; "fused", Steno.Fused; "native", Steno.Native ]
      else [ "linq", Steno.Linq; "fused", Steno.Fused ]
    in
    let median f =
      let samples = List.init 5 (fun _ -> snd (time f)) in
      List.nth (List.sort compare samples) 2
    in
    List.iter
      (fun (bname, b) ->
        let t =
          match demo with
          | Collection { build; _ } ->
            let p = Steno.prepare ~backend:b (build n) in
            median (fun () -> ignore (Steno.Prepared.run p))
          | Scalar { build; _ } ->
            let p = Steno.prepare_scalar ~backend:b (build n) in
            median (fun () -> ignore (Steno.Prepared_scalar.run p))
        in
        Printf.printf "%-8s %10.2f ms\n" bname t)
      backends;
    0

let cmd_eval src backend n =
  (* Evaluate a textual query against synthetic inputs:
     xs : int array, fs : float array, pairs : (int * float) array. *)
  match backend_of_string backend with
  | Error e ->
    prerr_endline e;
    1
  | Ok b -> (
    let lang_inputs : Elab.inputs =
      [
        "xs", Elab.Input (Ty.Int, int_input n);
        "fs", Elab.Input (Ty.Float, float_input n);
        ( "pairs",
          Elab.Input
            ( Ty.Pair (Ty.Int, Ty.Float),
              Array.init n (fun i -> i mod 97, float_of_int i /. 7.0) ) );
      ]
    in
    match Lang.run ~backend:b ~inputs:lang_inputs src with
    | result ->
      print_endline (Lang.result_to_string result);
      0
    | exception Lang.Error (msg, pos) ->
      Printf.eprintf "error at offset %d: %s\n" pos msg;
      1)

(* Explain a demo query by name (the optimizer's before/after view), or
   fall back to elaborating the argument as query text. *)
let cmd_explain src n =
  match find src with
  | Ok demo ->
    let eng = Steno.default_engine () in
    let ex =
      match demo with
      | Collection { build; _ } -> Steno.Engine.explain eng (build n)
      | Scalar { build; _ } -> Steno.Engine.explain_scalar eng (build n)
    in
    print_string (Steno.Engine.explain_to_string ex);
    0
  | Error _ when not (String.contains src ' ') ->
    (* A bare word that names no demo: a typo, not query text. *)
    unknown_demo src
  | Error _ -> (
    let lang_inputs : Elab.inputs =
      [
        "xs", Elab.Input (Ty.Int, int_input n);
        "fs", Elab.Input (Ty.Float, float_input n);
      ]
    in
    match Lang.explain ~inputs:lang_inputs src with
    | s ->
      print_endline s;
      0
    | exception Lang.Error (msg, pos) ->
      Printf.eprintf "error at offset %d: %s\n" pos msg;
      1)

(* Static checks on a demo, printed one diagnostic per line with stable
   rule codes.  Exit 1 when any Error-level diagnostic fires. *)
let lint_demo eng n demo =
  let diags =
    match demo with
    | Collection { build; _ } -> Steno.Engine.check eng (build n)
    | Scalar { build; _ } -> Steno.Engine.check_scalar eng (build n)
  in
  (match diags with
  | [] -> Printf.printf "%s: clean\n" (demo_name demo)
  | ds ->
    Printf.printf "%s:\n" (demo_name demo);
    List.iter (fun d -> Printf.printf "  %s\n" (Check.to_string d)) ds);
  Check.errors diags <> []

let cmd_lint name_opt all n =
  let eng = Steno.default_engine () in
  match name_opt, all with
  | _, true ->
    let any_error =
      List.fold_left (fun acc d -> lint_demo eng n d || acc) false demos
    in
    if any_error then 1 else 0
  | Some name, false -> (
    match find name with
    | Error _ -> unknown_demo name
    | Ok demo -> if lint_demo eng n demo then 1 else 0)
  | None, false ->
    prerr_endline "lint: name a demo query, or pass --all";
    2

(* Translation validation on a demo: replay the optimizer and print one
   line per proof obligation.  Exit 1 when any obligation is rejected. *)
let verify_demo eng n demo =
  let obligations =
    match demo with
    | Collection { build; _ } -> Steno.Engine.verify eng (build n)
    | Scalar { build; _ } -> Steno.Engine.verify_scalar eng (build n)
  in
  (match obligations with
  | [] -> Printf.printf "%s: no rewrites fired\n" (demo_name demo)
  | obs ->
    Printf.printf "%s:\n" (demo_name demo);
    List.iter
      (fun o -> Printf.printf "  %s\n" (Check.Equiv.obligation_string o))
      obs);
  not (Check.Equiv.accepted obligations)

let cmd_verify name_opt all n =
  let eng = Steno.default_engine () in
  match name_opt, all with
  | _, true ->
    let any_rejected =
      List.fold_left (fun acc d -> verify_demo eng n d || acc) false demos
    in
    if any_rejected then 1 else 0
  | Some name, false -> (
    match find name with
    | Error _ -> unknown_demo name
    | Ok demo -> if verify_demo eng n demo then 1 else 0)
  | None, false ->
    prerr_endline "verify: name a demo query, or pass --all";
    2

(* Command line. *)

open Cmdliner

let size =
  Arg.(value & opt int 1_000_000 & info [ "n"; "size" ] ~doc:"Input size.")

let query_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY")

let backend_arg =
  Arg.(
    value
    & opt string "native"
    & info [ "b"; "backend" ] ~doc:"Backend: linq, fused or native.")

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the demo queries.")
    Term.(const cmd_list $ const ())

let show_cmd =
  Cmd.v
    (Cmd.info "show"
       ~doc:"Print a query's operator chain, QUIL sentence and generated code.")
    Term.(const cmd_show $ query_arg $ size)

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print the telemetry span tree of the pipeline after running.")

let reps_arg =
  Arg.(
    value & opt int 5
    & info [ "reps" ] ~doc:"Number of prepare+run repetitions.")

let run_cmd =
  Cmd.v (Cmd.info "run" ~doc:"Run a demo query on a chosen backend.")
    Term.(const cmd_run $ query_arg $ backend_arg $ size $ trace_arg)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Repeatedly prepare and run a demo query through one engine and \
          report its plugin-cache statistics and per-stage telemetry \
          roll-up.")
    Term.(const cmd_stats $ query_arg $ backend_arg $ size $ reps_arg)

let bench_cmd =
  Cmd.v (Cmd.info "bench" ~doc:"Compare backends on a demo query.")
    Term.(const cmd_bench $ query_arg $ size)

let src_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY_TEXT")

let eval_cmd =
  Cmd.v
    (Cmd.info "eval"
       ~doc:
         "Evaluate a textual query, e.g. 'from x in xs where x % 2 = 0 \
          select x * x' (inputs: xs, fs, pairs).")
    Term.(const cmd_eval $ src_arg $ backend_arg $ size)

let explain_cmd =
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "For a demo query: show the optimizer's plan before/after and the \
          rewrite rules applied.  For query text: show the QUIL sentence \
          and generated code.")
    Term.(const cmd_explain $ src_arg $ size)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run a demo query under per-operator probes on every available \
          backend and print the optimized plan annotated with actual row \
          counts, indirect-call counts and timings.")
    Term.(const cmd_analyze $ query_arg $ size)

let lint_name_arg =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"QUERY")

let all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"Lint every demo query.")

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static checks (well-formedness, purity, \
          parallelizability, plan lints) on a demo query and print each \
          diagnostic with its rule code.  Exits 1 if any error-level \
          diagnostic fires, 2 for an unknown demo.")
    Term.(const cmd_lint $ lint_name_arg $ all_arg $ size)

let verify_all_arg =
  Arg.(value & flag & info [ "all" ] ~doc:"Verify every demo query.")

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Replay the optimizer on a demo query and discharge each rewrite \
          against the translation validator's law table, printing one \
          line per proof obligation (rule, verdict, law or rejection \
          reason).  Exits 1 if any obligation is rejected, 2 for an \
          unknown demo.")
    Term.(const cmd_verify $ lint_name_arg $ verify_all_arg $ size)

let cost_cmd =
  Cmd.v
    (Cmd.info "cost"
       ~doc:
         "Close the profiler-to-optimizer loop on a demo query: prepare \
          it on a profiling adaptive engine, run it to gather per-filter \
          selectivities, dump the statistics store, then prepare it again \
          and print the cost-based decisions (filter reorders, backend \
          choice) the second plan made.  Exits 2 for an unknown demo.")
    Term.(const cmd_cost $ query_arg $ size $ reps_arg)

let metrics_cmd =
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run the demo gallery through a profiling engine and dump the \
          metrics registry in OpenMetrics text format.")
    Term.(const cmd_metrics $ size)

let clients_arg =
  Arg.(
    value & opt int 8
    & info [ "clients" ] ~doc:"Number of simulated client sessions.")

let requests_arg =
  Arg.(
    value & opt int 4
    & info [ "requests" ] ~doc:"Requests submitted per client.")

let admin_port_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "admin-port" ]
        ~doc:
          "Start the HTTP admin listener on this loopback port (0 = an \
           ephemeral port, announced on stdout) and enable request \
           tracing.  Endpoints: /metrics, /healthz, /traces, /slow.")

let hold_arg =
  Arg.(
    value & opt float 0.
    & info [ "hold" ]
        ~doc:
          "With --admin-port: keep the process (and listener) alive this \
           many seconds after the stress, so an external scraper can hit \
           the endpoints.")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Stress the serving layer: simulated tenants submit a demo query \
          concurrently through one Server over one Engine, then the \
          metrics registry (per-tenant run counters and latency \
          histograms, server admission counters) is dumped in OpenMetrics \
          text format.  With --admin-port, also serves the ops plane over \
          HTTP and records request traces.")
    Term.(
      const cmd_serve $ clients_arg $ requests_arg $ size $ admin_port_arg
      $ hold_arg)

let trace_cmd =
  Cmd.group
    (Cmd.info "trace"
       ~doc:
         "Request-scoped traces from a traced, tiered serving workload \
          (every request traced, background tier promotion attributed to \
          the triggering request).")
    [
      Cmd.v
        (Cmd.info "export"
           ~doc:
             "Print the trace ring as Chrome trace_event JSON (load in \
              chrome://tracing or Perfetto).")
        Term.(const cmd_trace_export $ size);
      Cmd.v
        (Cmd.info "slow"
           ~doc:"Print the slow-query ring as text, worst first.")
        Term.(const cmd_trace_slow $ size);
    ]

let pcache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dir" ]
        ~doc:
          "Store root directory (default: \\$STENO_PCACHE_DIR, else the \
           XDG cache directory).")

let pcache_cmd =
  Cmd.group
    (Cmd.info "pcache"
       ~doc:
         "Inspect or clear the persistent compiled-plugin store (the \
          on-disk cache engines configured with a disk_cache read and \
          write).  Scoped to this toolchain's compiler/ABI fingerprint.")
    [
      Cmd.v
        (Cmd.info "stats" ~doc:"Report entry count and bytes on disk.")
        Term.(const cmd_pcache_stats $ pcache_dir_arg);
      Cmd.v
        (Cmd.info "clear"
           ~doc:"Delete every cached plugin for this toolchain.")
        Term.(const cmd_pcache_clear $ pcache_dir_arg);
    ]

let () =
  let doc = "Steno: automatic optimization of declarative queries" in
  exit
    (Cmd.eval'
       (Cmd.group (Cmd.info "stenoc" ~doc ~version:"1.0.0")
          [
            list_cmd; show_cmd; run_cmd; bench_cmd; stats_cmd; eval_cmd;
            explain_cmd; analyze_cmd; lint_cmd; verify_cmd; cost_cmd;
            metrics_cmd;
            serve_cmd;
            trace_cmd; pcache_cmd;
          ]))
