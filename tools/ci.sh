#!/bin/sh
# CI entry point: full build, the complete test suite, the examples, and
# a benchmark smoke run that also refreshes the machine-readable results
# file.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== optimizer differential tests =="
dune exec test/test_opt.exe

echo "== parallel-vs-Reference differential tests =="
dune exec test/test_par_diff.exe

echo "== examples =="
dune exec examples/quickstart.exe > /dev/null
dune exec examples/wordcount.exe -- 20000 > /dev/null

echo "== stenoc analyze (annotated plans, all backends) =="
dune exec bin/stenoc.exe -- analyze redundant -n 2000 > /dev/null

echo "== stenoc lint (static checks over the demo gallery) =="
dune exec bin/stenoc.exe -- lint --all -n 2000

echo "== stenoc metrics (OpenMetrics dump) =="
metrics_dump=$(dune exec bin/stenoc.exe -- metrics -n 2000)
for family in \
    'TYPE steno_run_ms histogram' \
    'TYPE steno_runs counter' \
    'TYPE steno_operator_rows counter' \
    'TYPE steno_operator_calls counter' \
    'TYPE steno_cache_entries gauge' \
    'TYPE steno_partition_rows histogram' \
    'TYPE steno_agg_merge_ms histogram' \
    'TYPE check_diagnostics counter' \
    '# EOF'
do
  if ! printf '%s\n' "$metrics_dump" | grep -qF "$family"; then
    echo "missing from metrics dump: $family" >&2
    exit 1
  fi
done

echo "== server concurrency suite =="
dune exec test/test_server.exe

echo "== stenoc serve (per-tenant metric labels) =="
serve_dump=$(dune exec bin/stenoc.exe -- serve --clients 6 --requests 3 -n 2000)
for needle in \
    'client="tenant-0"' \
    'TYPE steno_server_requests counter' \
    'TYPE steno_server_queue_ms histogram'
do
  if ! printf '%s\n' "$serve_dump" | grep -qF "$needle"; then
    echo "missing from serve metrics dump: $needle" >&2
    exit 1
  fi
done
# With a native toolchain, 18 identical concurrent requests must cost
# exactly one compiler run (plugin cache + single-flight dedup).
if printf '%s\n' "$serve_dump" | grep -q 'backend="native"'; then
  if ! printf '%s\n' "$serve_dump" | \
      grep -qF 'steno_compile_total{result="ok"} 1'; then
    echo "serve: expected exactly one native compile" >&2
    exit 1
  fi
fi

echo "== bench smoke (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json BENCH_PR2.json

echo "== profiling overhead (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json-profile BENCH_PR3.json

echo "== partitioned aggregation (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json-par BENCH_PR5.json
python3 -m json.tool BENCH_PR5.json > /dev/null

echo "== serving-layer stress smoke (8 clients x 4 requests) =="
dune exec bench/main.exe -- serve --scale 0.01 --clients 8 --requests 4 \
  --json-serve BENCH_PR6.json
python3 -m json.tool BENCH_PR6.json > /dev/null
for key in throughput_rps p50_ms p99_ms queue_p99_ms dedup_joins \
    rejected compiles
do
  if ! grep -qF "\"$key\"" BENCH_PR6.json; then
    echo "missing from BENCH_PR6.json: $key" >&2
    exit 1
  fi
done

echo "== ok =="
