#!/bin/sh
# CI entry point: full build, the complete test suite, the examples, and
# a benchmark smoke run that also refreshes the machine-readable results
# file.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== optimizer differential tests =="
dune exec test/test_opt.exe

echo "== parallel-vs-Reference differential tests =="
dune exec test/test_par_diff.exe

echo "== examples =="
dune exec examples/quickstart.exe > /dev/null
dune exec examples/wordcount.exe -- 20000 > /dev/null

echo "== stenoc analyze (annotated plans, all backends) =="
dune exec bin/stenoc.exe -- analyze redundant -n 2000 > /dev/null

echo "== stenoc lint (static checks over the demo gallery) =="
dune exec bin/stenoc.exe -- lint --all -n 2000

echo "== stenoc metrics (OpenMetrics dump) =="
metrics_dump=$(dune exec bin/stenoc.exe -- metrics -n 2000)
for family in \
    'TYPE steno_run_ms histogram' \
    'TYPE steno_runs counter' \
    'TYPE steno_operator_rows counter' \
    'TYPE steno_operator_calls counter' \
    'TYPE steno_cache_entries gauge' \
    'TYPE steno_partition_rows histogram' \
    'TYPE steno_agg_merge_ms histogram' \
    'TYPE check_diagnostics counter' \
    '# EOF'
do
  if ! printf '%s\n' "$metrics_dump" | grep -qF "$family"; then
    echo "missing from metrics dump: $family" >&2
    exit 1
  fi
done

echo "== bench smoke (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json BENCH_PR2.json

echo "== profiling overhead (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json-profile BENCH_PR3.json

echo "== partitioned aggregation (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json-par BENCH_PR5.json
python3 -m json.tool BENCH_PR5.json > /dev/null

echo "== ok =="
