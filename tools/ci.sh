#!/bin/sh
# CI entry point: full build, the complete test suite, the examples, and
# a benchmark smoke run that also refreshes the machine-readable results
# file.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== optimizer differential tests =="
dune exec test/test_opt.exe

echo "== examples =="
dune exec examples/quickstart.exe > /dev/null
dune exec examples/wordcount.exe -- 20000 > /dev/null

echo "== bench smoke (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json BENCH_PR2.json

echo "== ok =="
