#!/bin/sh
# CI entry point: full build, the complete test suite, the examples, and
# a benchmark smoke run that also refreshes the machine-readable results
# file.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== optimizer differential tests =="
dune exec test/test_opt.exe

echo "== parallel-vs-Reference differential tests =="
dune exec test/test_par_diff.exe

echo "== examples =="
dune exec examples/quickstart.exe > /dev/null
dune exec examples/wordcount.exe -- 20000 > /dev/null

echo "== stenoc analyze (annotated plans, all backends) =="
dune exec bin/stenoc.exe -- analyze redundant -n 2000 > /dev/null

echo "== stenoc lint (static checks over the demo gallery) =="
dune exec bin/stenoc.exe -- lint --all -n 2000

echo "== stenoc verify (translation validation over the demo gallery) =="
dune exec bin/stenoc.exe -- verify --all -n 2000

echo "== translation-validator suite =="
dune exec test/test_verify.exe

echo "== adaptive-optimization suite (incl. 200-pipeline differential) =="
dune exec test/test_adaptive.exe

echo "== stenoc cost (profiler-to-optimizer loop) =="
cost_out=$(dune exec bin/stenoc.exe -- cost needle -n 20000 --reps 3)
for needle in \
    'stats-where-reorder' \
    'reordered: ' \
    'selectivity'
do
  if ! printf '%s\n' "$cost_out" | grep -qF "$needle"; then
    echo "missing from stenoc cost output: $needle" >&2
    exit 1
  fi
done

echo "== stenoc metrics (OpenMetrics dump) =="
metrics_dump=$(dune exec bin/stenoc.exe -- metrics -n 2000)
for family in \
    'TYPE steno_run_ms histogram' \
    'TYPE steno_verify counter' \
    'steno_verify_total{result="accepted"}' \
    'TYPE steno_runs counter' \
    'TYPE steno_operator_rows counter' \
    'TYPE steno_operator_calls counter' \
    'TYPE steno_cache_entries gauge' \
    'TYPE steno_partition_rows histogram' \
    'TYPE steno_agg_merge_ms histogram' \
    'TYPE check_diagnostics counter' \
    'TYPE steno_pcache_hits counter' \
    'TYPE steno_pcache_misses counter' \
    'TYPE steno_pcache_evictions counter' \
    'TYPE steno_tier_promotions counter' \
    'TYPE steno_adaptive counter' \
    'steno_adaptive_total{decision="reorder"}' \
    '# EOF'
do
  if ! printf '%s\n' "$metrics_dump" | grep -qF "$family"; then
    echo "missing from metrics dump: $family" >&2
    exit 1
  fi
done

echo "== server concurrency suite =="
dune exec test/test_server.exe

echo "== plugin-cache persistence + tiering suite =="
dune exec test/test_pcache.exe

echo "== stenoc serve (per-tenant metric labels) =="
serve_dump=$(dune exec bin/stenoc.exe -- serve --clients 6 --requests 3 -n 2000)
for needle in \
    'client="tenant-0"' \
    'TYPE steno_server_requests counter' \
    'TYPE steno_server_queue_ms histogram'
do
  if ! printf '%s\n' "$serve_dump" | grep -qF "$needle"; then
    echo "missing from serve metrics dump: $needle" >&2
    exit 1
  fi
done
# With a native toolchain, 18 identical concurrent requests must cost
# exactly one compiler run (plugin cache + single-flight dedup).
if printf '%s\n' "$serve_dump" | grep -q 'backend="native"'; then
  if ! printf '%s\n' "$serve_dump" | \
      grep -qF 'steno_compile_total{result="ok"} 1'; then
    echo "serve: expected exactly one native compile" >&2
    exit 1
  fi
fi

echo "== bench smoke (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json BENCH_PR2.json

echo "== profiling overhead (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json-profile BENCH_PR3.json

echo "== partitioned aggregation (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json-par BENCH_PR5.json
python3 -m json.tool BENCH_PR5.json > /dev/null

echo "== serving-layer stress smoke (8 clients x 4 requests) =="
dune exec bench/main.exe -- serve --scale 0.01 --clients 8 --requests 4 \
  --json-serve BENCH_PR6.json
python3 -m json.tool BENCH_PR6.json > /dev/null
for key in throughput_rps p50_ms p99_ms queue_p99_ms dedup_joins \
    rejected compiles max_inflight workers
do
  if ! grep -qF "\"$key\"" BENCH_PR6.json; then
    echo "missing from BENCH_PR6.json: $key" >&2
    exit 1
  fi
done

echo "== tiering + persistent-cache smoke (scale 0.01) =="
dune exec bench/main.exe -- tier --scale 0.01 --json-tier BENCH_PR7.json
python3 -m json.tool BENCH_PR7.json > /dev/null
for key in compile_cold_prepare_ms pcache_cold_prepare_ms \
    pcache_warm_prepare_ms pcache_speedup pcache_warm_compiles \
    promoted promotion_ms diverged warmup_curve
do
  if ! grep -qF "\"$key\"" BENCH_PR7.json; then
    echo "missing from BENCH_PR7.json: $key" >&2
    exit 1
  fi
done
# With a native toolchain: the warm persistent cache must make a cold
# prepare at least 10x cheaper than compiling, with zero compiler runs;
# the tiering curve must start fused, promote, and never diverge.
if grep -qF '"native_available": true' BENCH_PR7.json; then
  python3 - <<'EOF'
import json, sys
r = json.load(open("BENCH_PR7.json"))
ok = True
def need(cond, msg):
    global ok
    if not cond:
        print("BENCH_PR7.json: " + msg, file=sys.stderr)
        ok = False
need(r["pcache_speedup"] >= 10.0,
     "pcache_speedup %.1f < 10x" % r["pcache_speedup"])
need(r["pcache_warm_compiles"] == 0, "warm prepare invoked the compiler")
need(r["pcache_warm_is_hit"], "warm prepare was not a cache hit")
need(r["pcache_hits"] >= 1, "no pcache hit recorded")
need(r["promoted"], "tiered preparation never promoted to native")
need(not r["diverged"], "results diverged across the tier swap")
curve = r["warmup_curve"]
need(curve and curve[0]["tier"] == "fused", "warm-up curve must start fused")
need(any(p["tier"] == "native" for p in curve),
     "warm-up curve never reached native")
sys.exit(0 if ok else 1)
EOF
fi

echo "== adaptive reorder bench (statically pessimal filter order) =="
dune exec bench/main.exe -- --scale 0.25 --json-adaptive BENCH_PR10.json
python3 -m json.tool BENCH_PR10.json > /dev/null
for key in static_order_ms adaptive_order_ms speedup reordered decisions
do
  if ! grep -qF "\"$key\"" BENCH_PR10.json; then
    echo "missing from BENCH_PR10.json: $key" >&2
    exit 1
  fi
done
# The adaptive second preparation must actually reorder, and the
# measured win on the adversarial ordering must be real (the expensive
# predicate is ~30x the cheap one, so 1.2x is a loose floor).
python3 - <<'EOF'
import json, sys
r = json.load(open("BENCH_PR10.json"))
ok = True
def need(cond, msg):
    global ok
    if not cond:
        print("BENCH_PR10.json: " + msg, file=sys.stderr)
        ok = False
need(r["reordered"], "adaptive preparation never reordered the filters")
need(r["speedup"] >= 1.2, "speedup %.2fx < 1.2x floor" % r["speedup"])
need(any(d.startswith("reordered: ") for d in r["decisions"]),
     "no reorder decision string surfaced")
sys.exit(0 if ok else 1)
EOF

echo "== tracing + ops-plane suite =="
dune exec test/test_trace.exe

echo "== admin endpoints (stenoc serve --admin-port) =="
serve_log=$(mktemp)
dune exec bin/stenoc.exe -- serve --clients 4 --requests 2 -n 2000 \
  --admin-port 0 --hold 30 > "$serve_log" 2>&1 &
serve_pid=$!
admin_url=""
for _ in $(seq 1 100); do
  admin_url=$(sed -n 's/^# admin listening on //p' "$serve_log")
  [ -n "$admin_url" ] && break
  sleep 0.2
done
if [ -z "$admin_url" ]; then
  echo "stenoc serve never announced the admin listener" >&2
  cat "$serve_log" >&2
  exit 1
fi
if [ "$(curl -fsS "$admin_url/healthz")" != "ok" ]; then
  echo "admin /healthz did not answer ok" >&2
  exit 1
fi
admin_metrics=$(curl -fsS "$admin_url/metrics")
for family in \
    'TYPE steno_server_requests counter' \
    'TYPE steno_server_queue_ms histogram' \
    'TYPE steno_trace_dropped counter' \
    'steno_trace_dropped_total' \
    'steno_traces_total'
do
  if ! printf '%s\n' "$admin_metrics" | grep -qF "$family"; then
    echo "missing from admin /metrics: $family" >&2
    exit 1
  fi
done
curl -fsS "$admin_url/traces" > /dev/null
curl -fsS "$admin_url/slow" > /dev/null
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
rm -f "$serve_log"

echo "== trace export (Chrome trace_event JSON) =="
dune exec bin/stenoc.exe -- trace export -n 2000 > trace_export.json
python3 - <<'EOF'
import json, sys
r = json.load(open("trace_export.json"))
events = r["traceEvents"]
ok = True
def need(cond, msg):
    global ok
    if not cond:
        print("trace export: " + msg, file=sys.stderr)
        ok = False
need(len(events) >= 1, "no events exported")
# Group complete events by trace (= pid) and demand at least one trace
# holding the request root, the run span, and the background promotion
# span — the cross-domain attribution the trace layer exists for.
by_pid = {}
for e in events:
    if e.get("ph") in ("X", "i"):
        by_pid.setdefault(e["pid"], set()).add(e["name"])
need(any({"request", "run", "tier.promote"} <= names
         for names in by_pid.values()),
     "no trace pairs request+run with its background tier.promote")
need(any("trace_id" in e.get("args", {}) for e in events),
     "no root span carries a trace_id")
sys.exit(0 if ok else 1)
EOF
rm -f trace_export.json

echo "== trace overhead (8 clients x 4 requests, sample 1.0) =="
dune exec bench/main.exe -- serve --scale 0.01 --clients 8 --requests 4 \
  --trace-sample 1.0 --json-trace BENCH_PR8.json
python3 -m json.tool BENCH_PR8.json > /dev/null
for key in trace_sample serve_off serve_traced traces trace_dropped \
    serve_throughput_delta_pct hot_run_off_ms hot_run_traced_ms \
    hot_overhead_pct
do
  if ! grep -qF "\"$key\"" BENCH_PR8.json; then
    echo "missing from BENCH_PR8.json: $key" >&2
    exit 1
  fi
done
# The hot-path tax of full tracing must stay under 10% (negative values
# are measurement noise and fine).
python3 - <<'EOF'
import json, sys
r = json.load(open("BENCH_PR8.json"))
pct = r["hot_overhead_pct"]
if pct >= 10.0:
    print("BENCH_PR8.json: hot-path tracing overhead %.1f%% >= 10%%" % pct,
          file=sys.stderr)
    sys.exit(1)
if r["serve_traced"]["traces"] < 1:
    print("BENCH_PR8.json: traced serve run recorded no traces",
          file=sys.stderr)
    sys.exit(1)
EOF

echo "== ok =="
