#!/bin/sh
# CI entry point: full build, the complete test suite, and a benchmark
# smoke run that also refreshes the machine-readable results file.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build =="
dune build @all

echo "== dune runtest =="
dune runtest

echo "== bench smoke (scale 0.01) =="
dune exec bench/main.exe -- --scale 0.01 --json BENCH_PR1.json

echo "== ok =="
